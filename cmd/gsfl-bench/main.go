// Command gsfl-bench regenerates the paper's figures and tables as CSV
// files under an output directory (default ./results).
//
// Experiments (see DESIGN.md's experiment index):
//
//	fig2a    accuracy vs rounds for CL/SL/GSFL/FL     -> fig2a.csv
//	fig2b    accuracy vs latency for GSFL/SL          -> fig2b.csv
//	table1   rounds-to-target convergence comparison  -> table1.csv
//	table2   per-round latency breakdown per scheme   -> table2.csv
//	table3   edge-server storage GSFL vs SplitFed     -> table3.csv
//	cutlayer cut-layer ablation (A1)                  -> ablation_cutlayer.csv
//	grouping group count/strategy ablation (A2)       -> ablation_grouping.csv
//	resalloc bandwidth-allocation ablation (A3)       -> ablation_resalloc.csv
//	pipeline pipelined-turn ablation (P)              -> ablation_pipeline.csv
//	quant    8-bit transfer ablation (Q)              -> ablation_quant.csv
//	dropout  client-dropout robustness (D)            -> ablation_dropout.csv
//	noniid   data-heterogeneity sweep (N)             -> ablation_noniid.csv
//	seeds    seed-variance study (S)                  -> seed_variance.csv
//	validate analytic vs event-driven latency (V)     -> latency_model_validation.csv
//	all      everything above
//
// Example:
//
//	gsfl-bench -exp fig2b -scale medium -out results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gsfl/internal/experiment"
	"gsfl/internal/parallel"
	"gsfl/internal/partition"
	"gsfl/internal/trace"
	"gsfl/internal/wireless"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gsfl-bench:", err)
		os.Exit(1)
	}
}

// scales maps -scale values to (spec, rounds, evalEvery, table1 target).
func scaleFor(name string) (experiment.Spec, int, int, float64, error) {
	switch name {
	case "test":
		return experiment.TestSpec(), 6, 2, 0.3, nil
	case "medium":
		spec := experiment.PaperSpec()
		spec.Clients = 30
		spec.Groups = 6
		spec.ImageSize = 16
		spec.TrainPerClient = 80
		spec.TestPerClass = 5
		spec.Hyper.Batch = 16
		spec.Hyper.StepsPerClient = 2
		spec.Device.N = spec.Clients
		return spec, 40, 4, 0.6, nil
	case "paper":
		return experiment.PaperSpec(), 200, 10, 0.85, nil
	default:
		return experiment.Spec{}, 0, 0, 0, fmt.Errorf("unknown scale %q (want test|medium|paper)", name)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gsfl-bench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment: fig2a|fig2b|table1|table2|table3|cutlayer|grouping|resalloc|pipeline|quant|dropout|noniid|seeds|validate|all")
		scale    = fs.String("scale", "test", "scale: test|medium|paper")
		outDir   = fs.String("out", "results", "output directory")
		rounds   = fs.Int("rounds", 0, "override training rounds (0 = scale default)")
		alloc    = fs.String("alloc", "uniform", "bandwidth allocator: uniform|propfair|latmin")
		strategy = fs.String("strategy", "roundrobin", "grouping: roundrobin|random|balanced")
		workers  = fs.Int("workers", 0, "worker goroutines for parallel execution (0 = GOMAXPROCS, 1 = serial)")

		benchJSON  = fs.String("benchjson", "", "measure the training hot path and write ns/B/allocs per op to this JSON file (skips experiments)")
		benchLabel = fs.String("benchlabel", "", "label recorded in the -benchjson report (e.g. baseline, after)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchJSON != "" {
		return runBenchJSON(*benchJSON, *benchLabel)
	}
	parallel.SetWorkers(*workers)
	spec, r, evalEvery, target, err := scaleFor(*scale)
	if err != nil {
		return err
	}
	if *rounds > 0 {
		r = *rounds
	}
	if spec.Alloc, err = wireless.ParseAllocator(*alloc); err != nil {
		return err
	}
	if spec.Strategy, err = partition.ParseStrategy(*strategy); err != nil {
		return err
	}

	run := func(name string, f func() error) error {
		if *exp != "all" && *exp != name {
			return nil
		}
		start := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("%-10s done in %v\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if err := run("fig2a", func() error {
		curves, err := experiment.RunFig2a(spec, r, evalEvery)
		if err != nil {
			return err
		}
		return trace.SaveCurvesCSV(filepath.Join(*outDir, "fig2a.csv"), curves)
	}); err != nil {
		return err
	}

	if err := run("fig2b", func() error {
		curves, err := experiment.RunFig2b(spec, r, evalEvery)
		if err != nil {
			return err
		}
		return trace.SaveCurvesCSV(filepath.Join(*outDir, "fig2b.csv"), curves)
	}); err != nil {
		return err
	}

	if err := run("table1", func() error {
		tbl, curves, err := experiment.RunTable1(spec, r, evalEvery, target)
		if err != nil {
			return err
		}
		if err := trace.SaveCurvesCSV(filepath.Join(*outDir, "table1_curves.csv"), curves); err != nil {
			return err
		}
		return tbl.SaveCSV(filepath.Join(*outDir, "table1.csv"))
	}); err != nil {
		return err
	}

	if err := run("table2", func() error {
		tbl, err := experiment.RunTable2(spec, r)
		if err != nil {
			return err
		}
		return tbl.SaveCSV(filepath.Join(*outDir, "table2.csv"))
	}); err != nil {
		return err
	}

	if err := run("table3", func() error {
		tbl, err := experiment.RunTable3(spec)
		if err != nil {
			return err
		}
		return tbl.SaveCSV(filepath.Join(*outDir, "table3.csv"))
	}); err != nil {
		return err
	}

	if err := run("cutlayer", func() error {
		res, err := experiment.RunAblationCutLayer(spec, []int{1, 3, 6, 9}, r, evalEvery)
		if err != nil {
			return err
		}
		tbl := trace.NewTable("ablation-cutlayer",
			"cut", "smashed_bytes_per_batch", "client_model_bytes", "round_latency_s", "final_accuracy")
		for _, x := range res {
			tbl.Add(trace.Row{
				"cut":                     x.Cut,
				"smashed_bytes_per_batch": x.SmashedBytes,
				"client_model_bytes":      x.ClientBytes,
				"round_latency_s":         fmt.Sprintf("%.4f", x.RoundLatency),
				"final_accuracy":          fmt.Sprintf("%.4f", x.FinalAccuracy),
			})
		}
		return tbl.SaveCSV(filepath.Join(*outDir, "ablation_cutlayer.csv"))
	}); err != nil {
		return err
	}

	if err := run("grouping", func() error {
		counts := groupCounts(spec.Clients)
		strategies := []partition.GroupStrategy{
			partition.GroupRoundRobin, partition.GroupRandom, partition.GroupComputeBalanced,
		}
		res, err := experiment.RunAblationGrouping(spec, counts, strategies, r, evalEvery)
		if err != nil {
			return err
		}
		tbl := trace.NewTable("ablation-grouping",
			"groups", "strategy", "round_latency_s", "final_accuracy")
		for _, x := range res {
			tbl.Add(trace.Row{
				"groups":          x.Groups,
				"strategy":        x.Strategy.String(),
				"round_latency_s": fmt.Sprintf("%.4f", x.RoundLatency),
				"final_accuracy":  fmt.Sprintf("%.4f", x.FinalAccuracy),
			})
		}
		return tbl.SaveCSV(filepath.Join(*outDir, "ablation_grouping.csv"))
	}); err != nil {
		return err
	}

	if err := run("resalloc", func() error {
		res, err := experiment.RunAblationAllocation(spec, r)
		if err != nil {
			return err
		}
		tbl := trace.NewTable("ablation-resalloc", "allocator", "round_latency_s")
		for _, x := range res {
			tbl.Add(trace.Row{
				"allocator":       x.Allocator,
				"round_latency_s": fmt.Sprintf("%.4f", x.RoundLatency),
			})
		}
		return tbl.SaveCSV(filepath.Join(*outDir, "ablation_resalloc.csv"))
	}); err != nil {
		return err
	}

	if err := run("pipeline", func() error {
		res, err := experiment.RunAblationPipelining(spec, r, evalEvery)
		if err != nil {
			return err
		}
		tbl := trace.NewTable("ablation-pipeline", "pipelined", "round_latency_s", "final_accuracy")
		for _, x := range res {
			tbl.Add(trace.Row{
				"pipelined":       x.Pipelined,
				"round_latency_s": fmt.Sprintf("%.4f", x.RoundLatency),
				"final_accuracy":  fmt.Sprintf("%.4f", x.FinalAccuracy),
			})
		}
		return tbl.SaveCSV(filepath.Join(*outDir, "ablation_pipeline.csv"))
	}); err != nil {
		return err
	}

	if err := run("quant", func() error {
		res, err := experiment.RunAblationQuantization(spec, r, evalEvery)
		if err != nil {
			return err
		}
		tbl := trace.NewTable("ablation-quant", "quantized", "round_latency_s", "final_accuracy")
		for _, x := range res {
			tbl.Add(trace.Row{
				"quantized":       x.Quantized,
				"round_latency_s": fmt.Sprintf("%.4f", x.RoundLatency),
				"final_accuracy":  fmt.Sprintf("%.4f", x.FinalAccuracy),
			})
		}
		return tbl.SaveCSV(filepath.Join(*outDir, "ablation_quant.csv"))
	}); err != nil {
		return err
	}

	if err := run("noniid", func() error {
		res, err := experiment.RunAblationNonIID(spec, []float64{0.1, 1, 100}, r, evalEvery)
		if err != nil {
			return err
		}
		tbl := trace.NewTable("ablation-noniid",
			"alpha", "scheme", "final_accuracy", "rounds_to_50pct", "reached")
		for _, x := range res {
			tbl.Add(trace.Row{
				"alpha":           fmt.Sprintf("%g", x.Alpha),
				"scheme":          x.Scheme,
				"final_accuracy":  fmt.Sprintf("%.4f", x.FinalAccuracy),
				"rounds_to_50pct": x.RoundsToHalf,
				"reached":         x.ReachedHalf,
			})
		}
		return tbl.SaveCSV(filepath.Join(*outDir, "ablation_noniid.csv"))
	}); err != nil {
		return err
	}

	if err := run("seeds", func() error {
		tbl := trace.NewTable("seed-variance",
			"scheme", "seeds", "mean_acc", "std_acc", "worst_acc", "best_acc")
		for _, scheme := range []string{"gsfl", "sl", "fl"} {
			st, err := experiment.RunSeedSweep(spec, scheme, 3, r, evalEvery)
			if err != nil {
				return err
			}
			tbl.Add(trace.Row{
				"scheme":    st.Scheme,
				"seeds":     st.Seeds,
				"mean_acc":  fmt.Sprintf("%.4f", st.MeanAcc),
				"std_acc":   fmt.Sprintf("%.4f", st.StdAcc),
				"worst_acc": fmt.Sprintf("%.4f", st.WorstAcc),
				"best_acc":  fmt.Sprintf("%.4f", st.BestAcc),
			})
		}
		return tbl.SaveCSV(filepath.Join(*outDir, "seed_variance.csv"))
	}); err != nil {
		return err
	}

	if err := run("validate", func() error {
		res, err := experiment.RunValidationEventDriven(spec)
		if err != nil {
			return err
		}
		tbl := trace.NewTable("latency-model-validation",
			"analytic_s", "event_driven_s", "relative_gap")
		tbl.Add(trace.Row{
			"analytic_s":     fmt.Sprintf("%.4f", res.AnalyticSeconds),
			"event_driven_s": fmt.Sprintf("%.4f", res.EventDrivenSeconds),
			"relative_gap":   fmt.Sprintf("%+.4f", res.RelativeGap),
		})
		return tbl.SaveCSV(filepath.Join(*outDir, "latency_model_validation.csv"))
	}); err != nil {
		return err
	}

	if err := run("dropout", func() error {
		res, err := experiment.RunAblationDropout(spec, []float64{0, 0.1, 0.2, 0.3}, r, evalEvery)
		if err != nil {
			return err
		}
		tbl := trace.NewTable("ablation-dropout", "dropout_prob", "round_latency_s", "final_accuracy")
		for _, x := range res {
			tbl.Add(trace.Row{
				"dropout_prob":    fmt.Sprintf("%.2f", x.DropoutProb),
				"round_latency_s": fmt.Sprintf("%.4f", x.RoundLatency),
				"final_accuracy":  fmt.Sprintf("%.4f", x.FinalAccuracy),
			})
		}
		return tbl.SaveCSV(filepath.Join(*outDir, "ablation_dropout.csv"))
	}); err != nil {
		return err
	}

	return nil
}

// groupCounts picks a reasonable sweep of M values for N clients.
func groupCounts(n int) []int {
	candidates := []int{1, 2, 3, 6, 10, 15, 30}
	var out []int
	for _, c := range candidates {
		if c <= n {
			out = append(out, c)
		}
	}
	return out
}
