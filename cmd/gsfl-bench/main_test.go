package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	// Each experiment at test scale with very few rounds; verify the CSV
	// artifacts appear.
	cases := map[string][]string{
		"table3":   {"table3.csv"},
		"table2":   {"table2.csv"},
		"fig2b":    {"fig2b.csv"},
		"resalloc": {"ablation_resalloc.csv"},
		"pipeline": {"ablation_pipeline.csv"},
		"quant":    {"ablation_quant.csv"},
		"dropout":  {"ablation_dropout.csv"},
	}
	for exp, files := range cases {
		t.Run(exp, func(t *testing.T) {
			dir := t.TempDir()
			err := run([]string{"-exp", exp, "-scale", "test", "-rounds", "2", "-out", dir})
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range files {
				if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
					t.Fatalf("missing artifact %s: %v", f, err)
				}
			}
		})
	}
}

// TestRunJobsEquivalence pins the tentpole contract: the CSVs gsfl-bench
// emits are byte-identical at -jobs 1 (the historical serial harness)
// and at -jobs 4 (concurrent scheduling).
func TestRunJobsEquivalence(t *testing.T) {
	dirSerial, dirJobs := t.TempDir(), t.TempDir()
	if err := run([]string{"-exp", "fig2a", "-scale", "test", "-rounds", "2", "-jobs", "1", "-out", dirSerial}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "fig2a", "-scale", "test", "-rounds", "2", "-jobs", "4", "-out", dirJobs}); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(filepath.Join(dirSerial, "fig2a.csv"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dirJobs, "fig2a.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("fig2a.csv differs between -jobs 1 and -jobs 4:\n%s\nvs\n%s", a, b)
	}
}

func TestRunRejectsBadScale(t *testing.T) {
	if err := run([]string{"-scale", "bogus"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "bogus", "-scale", "test"}); err == nil {
		t.Fatal("expected error")
	}
}
