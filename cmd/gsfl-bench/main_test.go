package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestScaleFor(t *testing.T) {
	for _, name := range []string{"test", "medium", "paper"} {
		spec, rounds, evalEvery, target, err := scaleFor(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if spec.Clients <= 0 || rounds <= 0 || evalEvery <= 0 || target <= 0 {
			t.Fatalf("%s: nonsense scale %+v %d %d %v", name, spec, rounds, evalEvery, target)
		}
	}
	if _, _, _, _, err := scaleFor("bogus"); err == nil {
		t.Fatal("expected error for unknown scale")
	}
}

func TestRunSingleExperiments(t *testing.T) {
	// Each experiment at test scale with very few rounds; verify the CSV
	// artifacts appear.
	cases := map[string][]string{
		"table3":   {"table3.csv"},
		"table2":   {"table2.csv"},
		"fig2b":    {"fig2b.csv"},
		"resalloc": {"ablation_resalloc.csv"},
		"pipeline": {"ablation_pipeline.csv"},
		"quant":    {"ablation_quant.csv"},
		"dropout":  {"ablation_dropout.csv"},
	}
	for exp, files := range cases {
		t.Run(exp, func(t *testing.T) {
			dir := t.TempDir()
			err := run([]string{"-exp", exp, "-scale", "test", "-rounds", "2", "-out", dir})
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range files {
				if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
					t.Fatalf("missing artifact %s: %v", f, err)
				}
			}
		})
	}
}

func TestRunRejectsBadScale(t *testing.T) {
	if err := run([]string{"-scale", "bogus"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestGroupCounts(t *testing.T) {
	got := groupCounts(6)
	for _, m := range got {
		if m > 6 {
			t.Fatalf("group count %d exceeds client count", m)
		}
	}
	if len(got) == 0 || got[0] != 1 {
		t.Fatalf("groupCounts(6) = %v", got)
	}
}
