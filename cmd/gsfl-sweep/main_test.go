package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func TestRunNamedExperiment(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	err := run(context.Background(), []string{
		"-exp", "fig2b", "-scale", "test", "-rounds", "2", "-jobs", "2", "-quiet", "-out", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"manifest.jsonl", "fig2b.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
}

func TestRunGridFileAndResume(t *testing.T) {
	tmp := t.TempDir()
	grid := filepath.Join(tmp, "grid.json")
	if err := os.WriteFile(grid, []byte(`{
		"name": "mini",
		"rounds": 2, "eval_every": 1,
		"axes": {"dropouts": [0, 0.2], "schemes": ["gsfl"]}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(tmp, "store")
	args := []string{"-grid", grid, "-scale", "test", "-jobs", "2", "-quiet", "-out", dir}
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(filepath.Join(dir, "manifest.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	// A second run without -resume must refuse the populated store.
	if err := run(context.Background(), args); err == nil {
		t.Fatal("expected refusal to reuse a store without -resume")
	}
	// With -resume it skips everything and leaves the manifest unchanged.
	if err := run(context.Background(), append(args, "-resume")); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(filepath.Join(dir, "manifest.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("resume of a complete sweep changed the manifest")
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run(context.Background(), nil); err == nil {
		t.Fatal("expected error when neither -grid nor -exp is given")
	}
	if err := run(context.Background(), []string{"-grid", "x.json", "-exp", "fig2a"}); err == nil {
		t.Fatal("expected error when both -grid and -exp are given")
	}
	if err := run(context.Background(), []string{"-exp", "bogus", "-out", t.TempDir() + "/s"}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
	if err := run(context.Background(), []string{"-exp", "fig2a", "-scale", "bogus"}); err == nil {
		t.Fatal("expected error for unknown scale")
	}
}
