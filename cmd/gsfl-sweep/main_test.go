package main

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunNamedExperiment(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	err := run(context.Background(), []string{
		"-exp", "fig2b", "-scale", "test", "-rounds", "2", "-jobs", "2", "-quiet", "-out", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"manifest.jsonl", "fig2b.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
}

func TestRunGridFileAndResume(t *testing.T) {
	tmp := t.TempDir()
	grid := filepath.Join(tmp, "grid.json")
	if err := os.WriteFile(grid, []byte(`{
		"name": "mini",
		"rounds": 2, "eval_every": 1,
		"axes": {"dropouts": [0, 0.2], "schemes": ["gsfl"]}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(tmp, "store")
	args := []string{"-grid", grid, "-scale", "test", "-jobs", "2", "-quiet", "-out", dir}
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(filepath.Join(dir, "manifest.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	// A second run without -resume must refuse the populated store.
	if err := run(context.Background(), args); err == nil {
		t.Fatal("expected refusal to reuse a store without -resume")
	}
	// With -resume it skips everything and leaves the manifest unchanged.
	if err := run(context.Background(), append(args, "-resume")); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(filepath.Join(dir, "manifest.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("resume of a complete sweep changed the manifest")
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run(context.Background(), nil); err == nil {
		t.Fatal("expected error when neither -grid nor -exp is given")
	}
	if err := run(context.Background(), []string{"-grid", "x.json", "-exp", "fig2a"}); err == nil {
		t.Fatal("expected error when both -grid and -exp are given")
	}
	if err := run(context.Background(), []string{"-exp", "bogus", "-out", t.TempDir() + "/s"}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
	if err := run(context.Background(), []string{"-exp", "fig2a", "-scale", "bogus"}); err == nil {
		t.Fatal("expected error for unknown scale")
	}
}

func TestListFlag(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(context.Background(), []string{"-list"})
	os.Stdout = old
	w.Close()
	if runErr != nil {
		t.Fatal(runErr)
	}
	buf, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	out := string(buf)
	for _, want := range []string{"schemes:", "allocators:", "strategies:", "archs:", "datasets:", "latency-min", "round-robin"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}
}

// TestGridFileBasePatch drives the env.Spec patch path: the grid file
// overrides base-spec fields (here the allocator and image size) that
// no axis sweeps, so external grids can express full world
// configurations.
func TestGridFileBasePatch(t *testing.T) {
	tmp := t.TempDir()
	grid := filepath.Join(tmp, "grid.json")
	if err := os.WriteFile(grid, []byte(`{
		"name": "patched",
		"rounds": 2, "eval_every": 1,
		"base": {"alloc": "latency-min", "train_per_client": 20},
		"axes": {"schemes": ["gsfl"]}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(tmp, "store")
	if err := run(context.Background(), []string{"-grid", grid, "-scale", "test", "-quiet", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	manifest, err := os.ReadFile(filepath.Join(dir, "manifest.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(manifest), `"name":"patched"`) {
		t.Fatalf("manifest missing patched job: %s", manifest)
	}

	// A bad patch must fail up front with a field-specific error.
	bad := filepath.Join(tmp, "bad.json")
	if err := os.WriteFile(bad, []byte(`{
		"name": "broken", "rounds": 2, "eval_every": 1,
		"base": {"alloc": "no-such-policy"},
		"axes": {"schemes": ["gsfl"]}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-grid", bad, "-scale", "test", "-quiet", "-out", filepath.Join(tmp, "store2")}); err == nil || !strings.Contains(err.Error(), "Alloc") {
		t.Fatalf("expected base-spec validation error, got %v", err)
	}
}
