// Command gsfl-sweep runs experiment grids through the concurrent,
// resumable sweep engine (gsfl/sweep).
//
// A sweep is either a named paper experiment (-exp fig2a, -exp grouping,
// …, -exp all — the same grids gsfl-bench regenerates figures from) or a
// custom grid file (-grid grid.json). Results land in a store directory
// (-out): a JSON-lines manifest (one record per completed job: identity,
// final accuracy, virtual-latency breakdown, curve points) plus one
// curve CSV per job. For named experiments the figure/table CSVs are
// folded and written into the store directory as well.
//
// Sweeps are resumable: with -resume, jobs already recorded in the
// manifest are skipped, and jobs killed mid-run continue from their sim
// checkpoint bit-identically. The final manifest bytes depend only on
// the grid — not on -jobs, scheduling, or how often the sweep was
// interrupted.
//
// A grid file selects a base via -scale, optionally patches it with a
// partial env.Spec ("base"), and sweeps any subset of axes:
//
//	{
//	  "name": "noniid-x-dropout",
//	  "rounds": 6, "eval_every": 2,
//	  "base": {"arch": "gtsrb-cnn", "alloc": "latency-min", "image_size": 8},
//	  "axes": {
//	    "alphas": [0.1, 1],
//	    "dropouts": [0, 0.2],
//	    "schemes": ["gsfl"]
//	  }
//	}
//
// A sweep can also run distributed (gsfl/fleet): -serve turns this
// process into the coordinator — it owns the store and leases jobs to
// pull-based workers over TCP — and -worker joins a coordinator and
// executes leased jobs, streaming checkpoints back so a killed worker's
// job resumes bit-identically elsewhere. The compacted store bytes are
// identical to a single-process run of the same grid.
//
// Examples:
//
//	gsfl-sweep -exp fig2a -scale test -jobs 4 -out results/sweep
//	gsfl-sweep -grid grid.json -jobs 8 -resume
//	gsfl-sweep -exp all -scale medium -jobs 4 -checkpoint-every 5
//	gsfl-sweep -exp fig2a -serve :7070 -out results/fleet
//	gsfl-sweep -worker host:7070 -name rack3
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"gsfl/cliutil"
	"gsfl/fleet"
	"gsfl/obs"
	"gsfl/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gsfl-sweep:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("gsfl-sweep", flag.ContinueOnError)
	var (
		gridFile  = fs.String("grid", "", "JSON grid file to sweep (mutually exclusive with -exp)")
		exp       = fs.String("exp", "", "named experiment grid(s): fig2a|fig2b|table1|table2|cutlayer|grouping|resalloc|pipeline|quant|dropout|noniid|popsample|seeds|numeric|all")
		scale     = fs.String("scale", "test", "base spec scale: test|medium|paper")
		outDir    = fs.String("out", "results/sweep", "store directory (manifest, curves, checkpoints)")
		jobs      = fs.Int("jobs", 0, "jobs trained concurrently (0 = GOMAXPROCS)")
		rounds    = fs.Int("rounds", 0, "override training rounds (0 = scale/grid default)")
		resume    = fs.Bool("resume", false, "skip jobs already in the manifest and continue killed in-flight jobs from their checkpoints")
		ckptEvery = fs.Int("checkpoint-every", 2, "rounds between in-flight job checkpoints (0 disables mid-job resume)")
		quiet     = fs.Bool("quiet", false, "suppress per-job progress lines")
		list      = fs.Bool("list", false, "list the registered schemes, allocators, strategies, archs, and datasets, then exit")

		serveAddr   = fs.String("serve", "", "run as fleet coordinator on this address (host:port; port 0 picks one) instead of training in-process")
		workerAddr  = fs.String("worker", "", "run as a fleet worker against the coordinator at this address (ignores grid/store flags)")
		leaseTTL    = fs.Duration("lease", fleet.DefaultLeaseTTL, "fleet lease TTL: a worker silent this long has its job reassigned (serve mode)")
		workerName  = fs.String("name", "", "fleet worker display name (worker mode; default worker-<pid>)")
		metricsAddr = fs.String("metrics", "", "serve fleet Prometheus metrics on this address (serve mode)")
	)
	var env cliutil.EnvFlags
	env.Register(fs)
	var obsFlags cliutil.ObsFlags
	obsFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		cliutil.PrintRegistries(os.Stdout)
		return nil
	}
	if *workerAddr != "" {
		if *serveAddr != "" {
			return fmt.Errorf("-serve and -worker are mutually exclusive")
		}
		return runWorker(ctx, *workerAddr, *workerName, *quiet)
	}
	if (*gridFile == "") == (*exp == "") {
		return fmt.Errorf("choose exactly one of -grid or -exp")
	}
	sc, err := cliutil.ParseScale(*scale)
	if err != nil {
		return err
	}
	spec := sc.Spec
	if err := env.Apply(&spec); err != nil {
		return err
	}

	// Assemble the job list and, for named experiments, the figure folds
	// to apply afterwards.
	var sel sweep.GridSelection
	if *gridFile != "" {
		grid, err := loadGrid(*gridFile, spec, sc.Rounds, sc.EvalEvery)
		if err != nil {
			return err
		}
		if *rounds > 0 {
			grid.Rounds = *rounds
		}
		if sel.Jobs, err = grid.Jobs(); err != nil {
			return err
		}
	} else {
		r := sc.Rounds
		if *rounds > 0 {
			r = *rounds
		}
		catalogue := sweep.GridExperiments(spec, r, sc.EvalEvery, sc.Target)
		known := map[string]bool{"all": true}
		for _, e := range catalogue {
			known[e.Name] = true
		}
		if !known[*exp] {
			return fmt.Errorf("unknown experiment %q", *exp)
		}
		if sel, err = sweep.SelectGridExperiments(catalogue, *exp); err != nil {
			return err
		}
	}

	if !*resume && sweep.StoreExists(*outDir) {
		// A fresh sweep must not silently reuse stale results.
		return fmt.Errorf("%s already holds a sweep manifest; pass -resume to continue it or choose another -out", *outDir)
	}
	store, err := sweep.OpenStore(*outDir)
	if err != nil {
		return err
	}
	defer store.Close()

	tracer, obsStop, err := obsFlags.Start(obs.ClockWall)
	if err != nil {
		return err
	}

	start := time.Now()
	var results []sweep.JobResult
	if *serveAddr != "" {
		results, err = serveFleet(ctx, *serveAddr, *metricsAddr, sel.Jobs, store, fleet.Config{
			LeaseTTL:        *leaseTTL,
			CheckpointEvery: *ckptEvery,
			Tracer:          tracer,
		}, *quiet)
	} else {
		sched := &sweep.Scheduler{
			Jobs:            *jobs,
			Workers:         env.Workers,
			CheckpointEvery: *ckptEvery,
			Tracer:          tracer,
		}
		if !*quiet {
			sched.Observers = append(sched.Observers, progressObserver(os.Stdout))
		}
		results, err = sched.Run(ctx, sel.Jobs, store)
	}
	// A partial trace of a failed sweep is still worth writing.
	if serr := obsStop(); serr != nil && err == nil {
		err = serr
	}
	if err != nil {
		return err
	}
	fmt.Printf("sweep complete: %d jobs (%d unique) in %v; store: %s\n",
		len(sel.Jobs), store.Len(), time.Since(start).Round(time.Millisecond), *outDir)

	return sel.Save(*outDir, results, func(name string, cells int) {
		fmt.Printf("%-10s folded (%d cells)\n", name, cells)
	})
}

// runWorker joins a fleet coordinator and executes leased jobs until
// drained (sweep complete) or interrupted.
func runWorker(ctx context.Context, addr, name string, quiet bool) error {
	logf := func(string, ...any) {}
	if !quiet {
		logf = func(format string, args ...any) {
			fmt.Printf("worker: "+format+"\n", args...)
		}
	}
	err := fleet.RunWorker(ctx, fleet.WorkerConfig{Addr: addr, Name: name, Logf: logf})
	if errors.Is(err, context.Canceled) {
		return nil // ^C is an orderly exit, not a failure
	}
	return err
}

// serveFleet runs the coordinator side of a distributed sweep: lease
// jobs to workers, persist their checkpoints and results, block until
// the store is complete and compacted.
func serveFleet(ctx context.Context, addr, metricsAddr string, jobs []sweep.Job, store *sweep.Store, cfg fleet.Config, quiet bool) ([]sweep.JobResult, error) {
	if !quiet {
		cfg.Observers = append(cfg.Observers, fleetProgressObserver(os.Stdout))
	}
	c, err := fleet.Serve(addr, jobs, store, cfg)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	fmt.Printf("coordinator on %s: %d jobs, lease %v, checkpoint every %d rounds\n",
		c.Addr(), len(jobs), cfg.LeaseTTL, cfg.CheckpointEvery)
	if metricsAddr != "" {
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return nil, fmt.Errorf("metrics listener: %w", err)
		}
		srv := &http.Server{Handler: c.MetricsHandler()}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Printf("fleet metrics on http://%s/\n", ln.Addr())
	}
	return c.Wait(ctx)
}

// fleetProgressObserver renders one line per coordinator event.
// Checkpoint uploads are deliberately silent — at tight cadences they
// would drown the lease lifecycle.
func fleetProgressObserver(w *os.File) fleet.Observer {
	return fleet.ObserverFunc(func(e fleet.Event) {
		switch e.Kind {
		case fleet.WorkerJoined:
			fmt.Fprintf(w, "[%3d/%d] join    %s\n", e.Done, e.Total, e.Worker)
		case fleet.WorkerLeft:
			fmt.Fprintf(w, "[%3d/%d] leave   %s\n", e.Done, e.Total, e.Worker)
		case fleet.JobLeased:
			if e.Round > 0 {
				fmt.Fprintf(w, "[%3d/%d] lease   %s -> %s (resume after round %d)\n", e.Done, e.Total, e.Job.Name, e.Worker, e.Round)
			} else {
				fmt.Fprintf(w, "[%3d/%d] lease   %s -> %s\n", e.Done, e.Total, e.Job.Name, e.Worker)
			}
		case fleet.JobReassigned:
			fmt.Fprintf(w, "[%3d/%d] requeue %s (was %s, round %d)\n", e.Done, e.Total, e.Job.Name, e.Worker, e.Round)
		case fleet.JobRecorded:
			fmt.Fprintf(w, "[%3d/%d] done    %s on %s\n", e.Done, e.Total, e.Job.Name, e.Worker)
		case fleet.JobFailed:
			fmt.Fprintf(w, "[%3d/%d] FAIL    %s on %s: %v\n", e.Done, e.Total, e.Job.Name, e.Worker, e.Err)
		case fleet.SweepCompleted:
			fmt.Fprintf(w, "[%3d/%d] sweep complete\n", e.Done, e.Total)
		}
	})
}

// gridFileSpec is the on-disk grid format: name, rounds, cadence, axes.
// The base spec comes from -scale (plus -alloc/-strategy overrides).
type gridFileSpec struct {
	Name      string          `json:"name"`
	Rounds    int             `json:"rounds"`
	EvalEvery int             `json:"eval_every"`
	Base      json.RawMessage `json:"base,omitempty"`
	Axes      sweep.Axes      `json:"axes"`
}

// loadGrid reads a grid file over the scale's base spec. Rounds and
// cadence default to the scale's when the file omits them. An optional
// "base" object is an env.Spec patch applied onto the scale's spec
// before the axes sweep — any Spec field, including registry-named
// extension points (dataset, arch, alloc, strategy), is expressible
// from a file.
func loadGrid(path string, base sweep.Spec, defRounds, defEval int) (sweep.Grid, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return sweep.Grid{}, fmt.Errorf("reading grid: %w", err)
	}
	var gf gridFileSpec
	if err := json.Unmarshal(buf, &gf); err != nil {
		return sweep.Grid{}, fmt.Errorf("parsing grid %s: %w", path, err)
	}
	if gf.Name == "" {
		return sweep.Grid{}, fmt.Errorf("grid %s: missing name", path)
	}
	if gf.Rounds == 0 {
		gf.Rounds = defRounds
	}
	if gf.EvalEvery == 0 {
		gf.EvalEvery = defEval
	}
	if len(gf.Base) > 0 {
		if err := json.Unmarshal(gf.Base, &base); err != nil {
			return sweep.Grid{}, fmt.Errorf("parsing grid %s base spec: %w", path, err)
		}
		if err := base.Validate(); err != nil {
			return sweep.Grid{}, fmt.Errorf("grid %s base spec: %w", path, err)
		}
	}
	return sweep.Grid{
		Name: gf.Name, Base: base,
		Rounds: gf.Rounds, EvalEvery: gf.EvalEvery,
		Axes: gf.Axes,
	}, nil
}

// progressObserver renders one line per job state change plus a coarse
// ETA derived from the rounds' host wall-clock (sim.RoundEvent
// .HostSeconds, which the scheduler forwards on every JobRound event —
// no timing needed here). The ETA is the serial-equivalent upper bound:
// remaining rounds times the mean host seconds per executed round.
func progressObserver(w *os.File) sweep.Observer {
	var (
		seen          int // jobs that have emitted any event
		seenRounds    int // their total round budget
		execRounds    int
		execHost      float64
		pendingRounds = map[string]int{} // started, unfinished jobs -> rounds left
		known         = map[string]bool{}
	)
	eta := func(total int) string {
		if execRounds == 0 || seen == 0 {
			return ""
		}
		left := 0
		for _, r := range pendingRounds {
			left += r
		}
		// Jobs the scheduler has not touched yet: assume the mean round
		// budget of the jobs seen so far.
		left += (total - seen) * (seenRounds / seen)
		d := time.Duration(float64(left) * execHost / float64(execRounds) * float64(time.Second))
		return fmt.Sprintf(" (serial eta<=%v)", d.Round(time.Second))
	}
	return sweep.ObserverFunc(func(e sweep.Event) {
		if !known[e.Job.ID] {
			known[e.Job.ID] = true
			seen++
			seenRounds += e.Job.Rounds
		}
		switch e.Kind {
		case sweep.JobStarted:
			pendingRounds[e.Job.ID] = e.Rounds
			fmt.Fprintf(w, "[%3d/%d] start  %s\n", e.Index+1, e.Total, e.Job.Name)
		case sweep.JobResumed:
			pendingRounds[e.Job.ID] = e.Rounds - e.Round
			fmt.Fprintf(w, "[%3d/%d] resume %s after round %d/%d\n", e.Index+1, e.Total, e.Job.Name, e.Round, e.Rounds)
		case sweep.JobRound:
			execRounds++
			execHost += e.HostSeconds
			if pendingRounds[e.Job.ID] > 0 {
				pendingRounds[e.Job.ID]--
			}
		case sweep.JobDone:
			delete(pendingRounds, e.Job.ID)
			fmt.Fprintf(w, "[%3d/%d] done   %s in %.2fs%s\n", e.Index+1, e.Total, e.Job.Name, e.HostSeconds, eta(e.Total))
		case sweep.JobSkipped:
			delete(pendingRounds, e.Job.ID)
			// Seed the rate estimate from the skipped job's recorded host
			// time (when the store still has it), so a resumed sweep's ETA
			// starts from the completed work instead of from zero.
			if e.HostSeconds > 0 {
				execRounds += e.Job.Rounds
				execHost += e.HostSeconds
			}
			fmt.Fprintf(w, "[%3d/%d] skip   %s (already in manifest)\n", e.Index+1, e.Total, e.Job.Name)
		case sweep.JobFailed:
			fmt.Fprintf(w, "[%3d/%d] FAIL   %s: %v\n", e.Index+1, e.Total, e.Job.Name, e.Err)
		}
	})
}
