// Command gsfl-loadgen measures what the GSFL transport sustains: it
// starts one access point plus a fleet of protocol-conformant synthetic
// clients over loopback TCP, drives full GSFL rounds, and emits a JSON
// report (the BENCH_tcp.json artifact) with sustained clients/round,
// round throughput, and byte counts.
//
// Synthetic clients replay pre-encoded frames instead of training, so
// the measured ceiling is the transport itself — framing, per-group
// scheduling, deadlines, straggler fallback, aggregation — not model
// math. Fault fractions wrap part of the fleet in deterministic fault
// profiles (mid-round stalls, mid-frame drops, per-write delays) to
// exercise the straggler and slot-refill paths at scale; -spare-frac
// holds back part of the fleet as refill spares.
//
// Examples:
//
//	gsfl-loadgen -clients 1000 -groups 25 -rounds 5 -deadline 10s -out BENCH_tcp.json
//	gsfl-loadgen -clients 200 -groups 8 -rounds 3 -stall-frac 0.05 -spare-frac 0.1 \
//	    -straggler reuse-last -deadline 2s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gsfl/cliutil"
	"gsfl/env"
	"gsfl/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gsfl-loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gsfl-loadgen", flag.ContinueOnError)
	var (
		clients   = fs.Int("clients", 1000, "synthetic fleet size")
		groups    = fs.Int("groups", 25, "number of concurrent relay chains (M)")
		rounds    = fs.Int("rounds", 5, "rounds to drive")
		steps     = fs.Int("steps", 2, "mini-batches per client turn")
		batch     = fs.Int("batch", 8, "mini-batch size shaping each frame")
		seed      = fs.Int64("seed", 1, "reproduces the run, fault schedules included")
		deadline  = fs.Duration("deadline", 10*time.Second, "per-round deadline (0 = none; not recommended with faults)")
		straggler = fs.String("straggler", "drop",
			"straggler fallback policy: "+strings.Join(env.StragglerPolicies(), "|"))
		stallFrac = fs.Float64("stall-frac", 0, "fleet fraction that stalls mid-round")
		dropFrac  = fs.Float64("drop-frac", 0, "fleet fraction that drops mid-frame")
		delayFrac = fs.Float64("delay-frac", 0, "fleet fraction with delayed writes")
		delay     = fs.Duration("delay", time.Millisecond, "per-write latency for the delay fraction")
		spareFrac = fs.Float64("spare-frac", 0, "fleet fraction held back as slot-refill spares")
		quant     = fs.Bool("quant", false, "quantize transfer frames to 8 bits")
		metrics   = fs.String("metrics", "", "serve AP transport counters over HTTP on this address")
		out       = fs.String("out", "", "write the JSON report here (default: stdout)")
		quiet     = fs.Bool("quiet", false, "suppress per-round progress on stderr")
		list      = fs.Bool("list", false, "list the registered extension points, then exit")
	)
	var obsFlags cliutil.ObsFlags
	obsFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		cliutil.PrintRegistries(os.Stdout)
		return nil
	}
	tracer, obsStop, err := obsFlags.Start(obs.ClockWall)
	if err != nil {
		return err
	}

	cfg := env.LoadGenConfig{
		Clients:        *clients,
		Groups:         *groups,
		Rounds:         *rounds,
		StepsPerClient: *steps,
		Batch:          *batch,
		Seed:           *seed,
		RoundDeadline:  *deadline,
		Straggler:      *straggler,
		StallFrac:      *stallFrac,
		DropFrac:       *dropFrac,
		DelayFrac:      *delayFrac,
		Delay:          *delay,
		SpareFrac:      *spareFrac,
		Quantize:       *quant,
		MetricsAddr:    *metrics,
		Tracer:         tracer,
	}
	if !*quiet {
		round := 0
		cfg.OnRound = func(s env.RoundStats) {
			round++
			fmt.Fprintf(os.Stderr, "round %3d/%d  wall %8s  participants %4d  stragglers %d  skipped %d  refilled %d\n",
				round, *rounds, s.Duration.Round(time.Millisecond),
				s.Participants, s.Stragglers, s.Skipped, s.Refilled)
		}
		fmt.Fprintf(os.Stderr, "driving %d synthetic clients in %d groups for %d rounds (policy %s)...\n",
			*clients, *groups, *rounds, *straggler)
	}

	rep, err := env.RunLoadGen(cfg)
	if serr := obsStop(); serr != nil && err == nil {
		err = serr
	}
	if err != nil {
		return err
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		return err
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "report written to %s\n", *out)
	}
	return nil
}
