package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsBadInputs(t *testing.T) {
	cases := map[string][]string{
		"bad flag":             {"-no-such-flag"},
		"zero clients":         {"-clients", "0"},
		"zero groups":          {"-groups", "0", "-clients", "4", "-rounds", "1"},
		"bad straggler policy": {"-straggler", "bogus", "-clients", "4", "-groups", "2", "-rounds", "1"},
		"all spares":           {"-clients", "4", "-groups", "2", "-rounds", "1", "-spare-frac", "1"},
		"unparseable deadline": {"-deadline", "soon"},
	}
	for name, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRunWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{
		"-clients", "8", "-groups", "2", "-rounds", "2",
		"-deadline", "5s", "-quiet", "-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Clients           int `json:"clients"`
		ParticipantsTotal int `json:"participants_total"`
		StragglersTotal   int `json:"stragglers_total"`
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, b)
	}
	if rep.Clients != 8 || rep.ParticipantsTotal != 16 || rep.StragglersTotal != 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
}

// captureStdout runs f with os.Stdout redirected and returns its output.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	return sb.String()
}

func TestListFlag(t *testing.T) {
	out := captureStdout(t, func() {
		if err := run([]string{"-list"}); err != nil {
			t.Error(err)
		}
	})
	for _, want := range []string{"stragglers:", "drop", "reuse-last"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}
}
