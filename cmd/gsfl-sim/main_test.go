package main

import (
	"bufio"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tinyArgs(extra ...string) []string {
	base := []string{
		"-clients", "4", "-groups", "2", "-rounds", "2", "-eval-every", "1",
		"-image-size", "8", "-samples", "20", "-test-per-class", "1",
		"-batch", "4", "-steps", "1",
	}
	return append(base, extra...)
}

func runTiny(t *testing.T, args []string) {
	t.Helper()
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllSchemes(t *testing.T) {
	for _, scheme := range []string{"gsfl", "sl", "fl", "cl", "sfl"} {
		if err := run(context.Background(), tinyArgs("-scheme", scheme)); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
	}
}

func TestRunWritesCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "curve.csv")
	runTiny(t, tinyArgs("-out", out))
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "scheme,round") {
		t.Fatalf("csv content: %.40q", string(b))
	}
}

func TestRunAllocatorsAndStrategies(t *testing.T) {
	for _, alloc := range []string{"uniform", "propfair", "latmin"} {
		runTiny(t, tinyArgs("-alloc", alloc))
	}
	for _, st := range []string{"roundrobin", "random", "balanced"} {
		runTiny(t, tinyArgs("-strategy", st))
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	cases := map[string][]string{
		"bad scheme":          tinyArgs("-scheme", "bogus"),
		"bad alloc":           tinyArgs("-alloc", "bogus"),
		"bad strategy":        tinyArgs("-strategy", "bogus"),
		"bad flag":            {"-no-such-flag"},
		"resume without ckpt": tinyArgs("-resume"),
	}
	for name, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestJSONStreamShape(t *testing.T) {
	// -json writes to stdout; capture it through a pipe.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(context.Background(), tinyArgs("-json"))
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}

	sc := bufio.NewScanner(r)
	lines := 0
	for sc.Scan() {
		var ev jsonEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v (%q)", lines+1, err, sc.Text())
		}
		lines++
		if ev.Round != lines || ev.Scheme != "gsfl" {
			t.Fatalf("line %d: unexpected event %+v", lines, ev)
		}
		if ev.RoundSeconds <= 0 || len(ev.Components) == 0 {
			t.Fatalf("line %d: missing latency breakdown: %+v", lines, ev)
		}
		// -eval-every 1: every round carries an evaluation.
		if ev.Loss == nil || ev.Accuracy == nil {
			t.Fatalf("line %d: missing evaluation: %+v", lines, ev)
		}
	}
	if lines != 2 {
		t.Fatalf("got %d JSON lines, want one per round (2)", lines)
	}
}

func TestCheckpointResumeCLI(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	// 2 rounds with a checkpoint each round, then resume to round 4.
	runTiny(t, tinyArgs("-checkpoint", ckpt, "-checkpoint-every", "1"))
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	args := append(tinyArgs("-checkpoint", ckpt, "-resume"), "-rounds", "4")
	runTiny(t, args)
	// Cadence inheritance: the resume above did not re-pass
	// -checkpoint-every, so per-round checkpointing must have continued
	// and the file must now hold round 4 — resuming past it works.
	runTiny(t, append(tinyArgs("-checkpoint", ckpt, "-resume"), "-rounds", "5"))
}

func TestResumeRejectsChangedFlagsCLI(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	runTiny(t, tinyArgs("-checkpoint", ckpt, "-checkpoint-every", "1"))
	// A different learning rate rebuilds a different env; the env
	// fingerprint must reject the resume.
	args := append(tinyArgs("-checkpoint", ckpt, "-resume", "-lr", "0.5"), "-rounds", "4")
	if err := run(context.Background(), args); err == nil {
		t.Fatal("resume with changed env flags must error")
	}
}

// captureStdout runs f with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	return sb.String()
}

func TestListFlag(t *testing.T) {
	out := captureStdout(t, func() {
		if err := run(context.Background(), []string{"-list"}); err != nil {
			t.Error(err)
		}
	})
	// One source of truth — the registries — so every built-in name must
	// stream through -list.
	for _, want := range []string{
		"schemes:", "gsfl", "allocators:", "proportional-fair",
		"strategies:", "compute-balanced", "archs:", "deepthin-cnn",
		"datasets:", "gtsrb-synth",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}
}
