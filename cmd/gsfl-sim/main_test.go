package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tinyArgs(extra ...string) []string {
	base := []string{
		"-clients", "4", "-groups", "2", "-rounds", "2", "-eval-every", "1",
		"-image-size", "8", "-samples", "20", "-test-per-class", "1",
		"-batch", "4", "-steps", "1",
	}
	return append(base, extra...)
}

func TestRunAllSchemes(t *testing.T) {
	for _, scheme := range []string{"gsfl", "sl", "fl", "cl", "sfl"} {
		if err := run(tinyArgs("-scheme", scheme)); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
	}
}

func TestRunWritesCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "curve.csv")
	if err := run(tinyArgs("-out", out)); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "scheme,round") {
		t.Fatalf("csv content: %.40q", string(b))
	}
}

func TestRunAllocatorsAndStrategies(t *testing.T) {
	for _, alloc := range []string{"uniform", "propfair", "latmin"} {
		if err := run(tinyArgs("-alloc", alloc)); err != nil {
			t.Fatalf("alloc %s: %v", alloc, err)
		}
	}
	for _, st := range []string{"roundrobin", "random", "balanced"} {
		if err := run(tinyArgs("-strategy", st)); err != nil {
			t.Fatalf("strategy %s: %v", st, err)
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	cases := map[string][]string{
		"bad scheme":   tinyArgs("-scheme", "bogus"),
		"bad alloc":    tinyArgs("-alloc", "bogus"),
		"bad strategy": tinyArgs("-strategy", "bogus"),
		"bad flag":     {"-no-such-flag"},
	}
	for name, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}
