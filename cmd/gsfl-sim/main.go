// Command gsfl-sim trains one distributed-learning scheme (gsfl, sl, fl,
// cl, or sfl) in the simulated wireless environment and prints the
// training curve: per-evaluation round, cumulative latency, loss, and
// accuracy. Optionally writes the curve as CSV.
//
// Example:
//
//	gsfl-sim -scheme gsfl -clients 30 -groups 6 -rounds 50 -eval-every 5
package main

import (
	"flag"
	"fmt"
	"os"

	"gsfl/internal/experiment"
	"gsfl/internal/metrics"
	"gsfl/internal/parallel"
	"gsfl/internal/partition"
	"gsfl/internal/trace"
	"gsfl/internal/wireless"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gsfl-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gsfl-sim", flag.ContinueOnError)
	var (
		scheme    = fs.String("scheme", "gsfl", "scheme to train: gsfl|sl|fl|cl|sfl")
		clients   = fs.Int("clients", 30, "number of clients (N)")
		groups    = fs.Int("groups", 6, "number of GSFL groups (M)")
		rounds    = fs.Int("rounds", 20, "training rounds")
		evalEvery = fs.Int("eval-every", 5, "evaluate every k rounds")
		imageSize = fs.Int("image-size", 16, "synthetic GTSRB image edge (divisible by 4)")
		samples   = fs.Int("samples", 100, "training samples per client")
		testPer   = fs.Int("test-per-class", 5, "test samples per class")
		alpha     = fs.Float64("alpha", 1.0, "Dirichlet non-IID alpha (0 = IID)")
		cut       = fs.Int("cut", 3, "cut layer index")
		batch     = fs.Int("batch", 16, "mini-batch size")
		steps     = fs.Int("steps", 4, "mini-batches per client per round")
		lr        = fs.Float64("lr", 0.02, "learning rate")
		momentum  = fs.Float64("momentum", 0.9, "SGD momentum")
		seed      = fs.Int64("seed", 1, "global random seed")
		alloc     = fs.String("alloc", "uniform", "bandwidth allocator: uniform|propfair|latmin")
		strategy  = fs.String("strategy", "roundrobin", "grouping: roundrobin|random|balanced")
		out       = fs.String("out", "", "optional CSV output path for the curve")
		pipelined = fs.Bool("pipelined", false, "overlap communication and computation in GSFL turns")
		quant     = fs.Bool("quant", false, "quantize smashed data and gradients to 8 bits")
		dropout   = fs.Float64("dropout", 0, "per-round client unavailability probability (GSFL)")
		workers   = fs.Int("workers", 0, "worker goroutines for parallel execution (0 = GOMAXPROCS, 1 = serial)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	parallel.SetWorkers(*workers)

	spec := experiment.PaperSpec()
	spec.Clients = *clients
	spec.Groups = *groups
	spec.ImageSize = *imageSize
	spec.TrainPerClient = *samples
	spec.TestPerClass = *testPer
	spec.Alpha = *alpha
	spec.Cut = *cut
	spec.Hyper.Batch = *batch
	spec.Hyper.StepsPerClient = *steps
	spec.Hyper.LR = *lr
	spec.Hyper.Momentum = *momentum
	spec.Seed = *seed
	spec.Device.N = *clients
	spec.Pipelined = *pipelined
	spec.Hyper.QuantizeTransfers = *quant
	spec.DropoutProb = *dropout

	switch *alloc {
	case "uniform":
		spec.Alloc = wireless.Uniform{}
	case "propfair":
		spec.Alloc = wireless.ProportionalFair{}
	case "latmin":
		spec.Alloc = wireless.LatencyMin{}
	default:
		return fmt.Errorf("unknown allocator %q", *alloc)
	}
	switch *strategy {
	case "roundrobin":
		spec.Strategy = partition.GroupRoundRobin
	case "random":
		spec.Strategy = partition.GroupRandom
	case "balanced":
		spec.Strategy = partition.GroupComputeBalanced
	default:
		return fmt.Errorf("unknown grouping strategy %q", *strategy)
	}

	fmt.Printf("training %s: N=%d M=%d rounds=%d image=%dpx cut=%d\n",
		*scheme, *clients, *groups, *rounds, *imageSize, *cut)
	curve, err := experiment.RunScheme(spec, *scheme, *rounds, *evalEvery)
	if err != nil {
		return err
	}
	printCurve(curve)

	if *out != "" {
		if err := trace.SaveCurvesCSV(*out, []*metrics.Curve{curve}); err != nil {
			return err
		}
		fmt.Printf("curve written to %s\n", *out)
	}
	return nil
}

func printCurve(c *metrics.Curve) {
	fmt.Printf("%8s %14s %10s %10s\n", "round", "latency(s)", "loss", "accuracy")
	for _, p := range c.Points {
		fmt.Printf("%8d %14.3f %10.4f %9.2f%%\n", p.Round, p.LatencySeconds, p.Loss, p.Accuracy*100)
	}
	fmt.Printf("final accuracy: %.2f%%\n", c.FinalAccuracy()*100)
}
