// Command gsfl-sim trains one distributed-learning scheme in the
// simulated wireless environment through the public run API (gsfl/sim):
// rounds stream as they complete, the process exits cleanly on Ctrl-C,
// and long runs can checkpoint and resume bit-identically.
//
// Output: a human-readable evaluation table by default, or one JSON
// line per round with -json (round index, per-component latencies, and
// loss/accuracy on evaluation rounds) for machine consumption. The
// final curve can additionally be written as CSV with -out.
//
// Examples:
//
//	gsfl-sim -scheme gsfl -clients 30 -groups 6 -rounds 50 -eval-every 5
//	gsfl-sim -scheme gsfl -rounds 2 -json
//	gsfl-sim -rounds 100 -checkpoint run.ckpt -checkpoint-every 10
//	gsfl-sim -rounds 100 -checkpoint run.ckpt -resume   # continue a killed run
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"

	"gsfl/cliutil"
	"gsfl/env"
	"gsfl/obs"
	"gsfl/sim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gsfl-sim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("gsfl-sim", flag.ContinueOnError)
	var (
		scheme    = fs.String("scheme", "gsfl", "scheme to train: one of sim.Schemes()")
		clients   = fs.Int("clients", 30, "number of clients (N)")
		groups    = fs.Int("groups", 6, "number of GSFL groups (M)")
		rounds    = fs.Int("rounds", 20, "training rounds (total, including resumed ones)")
		evalEvery = fs.Int("eval-every", 5, "evaluate every k rounds")
		imageSize = fs.Int("image-size", 16, "synthetic GTSRB image edge (divisible by 4)")
		samples   = fs.Int("samples", 100, "training samples per client")
		testPer   = fs.Int("test-per-class", 5, "test samples per class")
		alpha     = fs.Float64("alpha", 1.0, "Dirichlet non-IID alpha (0 = IID)")
		cut       = fs.Int("cut", 3, "cut layer index")
		batch     = fs.Int("batch", 16, "mini-batch size")
		steps     = fs.Int("steps", 4, "mini-batches per client per round")
		lr        = fs.Float64("lr", 0.02, "learning rate")
		momentum  = fs.Float64("momentum", 0.9, "SGD momentum")
		seed      = fs.Int64("seed", 1, "global random seed")
		out       = fs.String("out", "", "optional CSV output path for the curve")
		jsonOut   = fs.Bool("json", false, "emit one JSON line per round instead of the table")
		pipelined = fs.Bool("pipelined", false, "overlap communication and computation in GSFL turns")
		quant     = fs.Bool("quant", false, "quantize smashed data and gradients to 8 bits")
		dropout   = fs.Float64("dropout", 0, "per-round client unavailability probability (GSFL)")
		ckpt      = fs.String("checkpoint", "", "checkpoint file path")
		ckptEvery = fs.Int("checkpoint-every", 10, "rounds between checkpoints (with -checkpoint)")
		resume    = fs.Bool("resume", false, "resume from the -checkpoint file (its scheme and options win over -scheme; the env flags must match the original run)")
		metrics   = fs.String("metrics", "", "address serving run metrics (round/phase histograms, plus population gauges when -population is set) over HTTP")
		list      = fs.Bool("list", false, "list the registered schemes, allocators, strategies, archs, and datasets, then exit")
	)
	var envFlags cliutil.EnvFlags
	envFlags.Register(fs)
	var popFlags cliutil.PopFlags
	popFlags.Register(fs)
	var obsFlags cliutil.ObsFlags
	obsFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		cliutil.PrintRegistries(os.Stdout)
		return nil
	}

	spec := env.PaperSpec()
	spec.Clients = *clients
	spec.Groups = *groups
	spec.ImageSize = *imageSize
	spec.TrainPerClient = *samples
	spec.TestPerClass = *testPer
	spec.Alpha = *alpha
	spec.Cut = *cut
	spec.Hyper.Batch = *batch
	spec.Hyper.StepsPerClient = *steps
	spec.Hyper.LR = *lr
	spec.Hyper.Momentum = *momentum
	spec.Seed = *seed
	spec.Device.N = *clients
	spec.Pipelined = *pipelined
	spec.Hyper.QuantizeTransfers = *quant
	spec.DropoutProb = *dropout

	if err := envFlags.Apply(&spec); err != nil {
		return err
	}
	if err := popFlags.Apply(&spec); err != nil {
		return err
	}

	world, err := env.Build(spec)
	if err != nil {
		return err
	}
	// -metrics serves the run's own histograms/counters; when a
	// population is active its gauges are concatenated onto the same
	// page (metric names are disjoint, so the exposition stays valid).
	var runMetrics *sim.RunMetrics
	if *metrics != "" {
		runMetrics = sim.NewRunMetrics()
		pm, _ := world.Pop.(interface{ MetricsHandler() http.Handler })
		handler := func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			runMetrics.WriteText(w)
			if pm != nil {
				pm.MetricsHandler().ServeHTTP(w, r)
			}
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", handler)
		srv := &http.Server{Addr: *metrics, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "gsfl-sim: metrics endpoint:", err)
			}
		}()
		defer srv.Close()
	}

	tracer, obsStop, err := obsFlags.Start(obs.ClockVirtual)
	if err != nil {
		return err
	}

	// Flags explicitly given on the command line; on resume, cadences
	// not re-specified are inherited from the checkpoint.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	opts := []sim.RunOption{
		sim.WithRounds(*rounds),
		sim.WithWorkers(envFlags.Workers),
	}
	if tracer != nil {
		opts = append(opts, sim.WithTracer(tracer))
	}
	if runMetrics != nil {
		opts = append(opts, sim.WithObserver(runMetrics))
	}
	if !*resume || explicit["eval-every"] {
		opts = append(opts, sim.WithEvalEvery(*evalEvery))
	}
	if *ckpt != "" {
		opts = append(opts, sim.WithCheckpointPath(*ckpt))
		if !*resume || explicit["checkpoint-every"] {
			opts = append(opts, sim.WithCheckpointEvery(*ckptEvery))
		}
	}
	if *jsonOut {
		opts = append(opts, sim.WithObserver(jsonObserver(os.Stdout)))
	} else {
		opts = append(opts, sim.WithObserver(tableObserver(os.Stdout)))
	}

	var runner *sim.Runner
	if *resume {
		if *ckpt == "" {
			return fmt.Errorf("-resume needs -checkpoint")
		}
		// The checkpoint dictates the scheme and its options; -scheme is
		// ignored on resume.
		if runner, err = sim.Resume(*ckpt, world, opts...); err != nil {
			return err
		}
		if !*jsonOut {
			fmt.Printf("resuming %s from %s at round %d (of %d)\n",
				runner.Scheme(), *ckpt, runner.CompletedRounds(), *rounds)
		}
	} else {
		schemeOpts, err := spec.SchemeOptions()
		if err != nil {
			return err
		}
		tr, err := sim.New(*scheme, world, schemeOpts)
		if err != nil {
			return err
		}
		runner = sim.NewRunner(tr, opts...)
		if !*jsonOut {
			fmt.Printf("training %s: N=%d M=%d rounds=%d image=%dpx cut=%d\n",
				*scheme, *clients, *groups, *rounds, *imageSize, *cut)
		}
	}
	if !*jsonOut {
		fmt.Printf("%8s %14s %10s %10s\n", "round", "latency(s)", "loss", "accuracy")
	}

	curve, err := runner.Run(ctx)
	// Write the trace even after a failed run — a partial trace is
	// exactly what a post-mortem needs.
	if serr := obsStop(); serr != nil && err == nil {
		err = serr
	}
	if err != nil {
		return err
	}
	if !*jsonOut {
		fmt.Printf("final accuracy: %.2f%%\n", curve.FinalAccuracy()*100)
	}

	if *out != "" {
		if err := sim.SaveCurvesCSV(*out, []*sim.Curve{curve}); err != nil {
			return err
		}
		if !*jsonOut {
			fmt.Printf("curve written to %s\n", *out)
		}
	}
	return nil
}

// tableObserver prints one table row per evaluation as it streams.
func tableObserver(w *os.File) sim.Observer {
	return sim.ObserverFunc(func(e sim.RoundEvent) {
		if e.Eval == nil {
			return
		}
		fmt.Fprintf(w, "%8d %14.3f %10.4f %9.2f%%\n",
			e.Round, e.ElapsedSeconds, e.Eval.Loss, e.Eval.Accuracy*100)
	})
}

// jsonEvent is the machine-readable per-round record -json emits.
type jsonEvent struct {
	Scheme         string             `json:"scheme"`
	Round          int                `json:"round"`
	Rounds         int                `json:"rounds"`
	RoundSeconds   float64            `json:"round_seconds"`
	ElapsedSeconds float64            `json:"elapsed_seconds"`
	Components     map[string]float64 `json:"components"`
	Loss           *float64           `json:"loss,omitempty"`
	Accuracy       *float64           `json:"accuracy,omitempty"`
	Checkpoint     string             `json:"checkpoint,omitempty"`
}

// jsonObserver emits one JSON line per RoundEvent.
func jsonObserver(w *os.File) sim.Observer {
	enc := json.NewEncoder(w)
	return sim.ObserverFunc(func(e sim.RoundEvent) {
		ev := jsonEvent{
			Scheme:         e.Scheme,
			Round:          e.Round,
			Rounds:         e.Rounds,
			RoundSeconds:   e.RoundSeconds,
			ElapsedSeconds: e.ElapsedSeconds,
			Components:     map[string]float64{},
			Checkpoint:     e.CheckpointPath,
		}
		for _, c := range sim.Components() {
			if s := e.Ledger.Get(c); s > 0 {
				ev.Components[c.String()] = s
			}
		}
		if e.Eval != nil {
			loss, acc := e.Eval.Loss, e.Eval.Accuracy
			ev.Loss, ev.Accuracy = &loss, &acc
		}
		// Encode errors (closed pipe etc.) intentionally do not abort
		// training; the run is the product, the stream is telemetry.
		_ = enc.Encode(ev)
	})
}
