module gsfl

go 1.24
