// Package gsfl is a from-scratch Go reproduction of "Split Federated
// Learning: Speed up Model Training in Resource-Limited Wireless
// Networks" (Zhang et al., ICDCS 2023; arXiv:2305.18889).
//
// The implementation lives under internal/: a tensor and neural-network
// training framework (internal/tensor, internal/nn, internal/loss,
// internal/optim), the split-model container (internal/model), a
// synthetic GTSRB dataset generator (internal/gtsrb), a wireless network
// and device simulator (internal/wireless, internal/device,
// internal/simnet), the GSFL scheme itself (internal/gsfl), the CL, SL,
// FL, and SplitFed baselines (internal/schemes/...), and the experiment
// harness that regenerates every figure and table from the paper
// (internal/experiment).
//
// Entry points: cmd/gsfl-sim runs one scheme, cmd/gsfl-bench regenerates
// the paper's figures and tables as CSV, cmd/gsfl-datagen renders
// synthetic GTSRB samples. The root-level bench_test.go exposes one
// testing.B benchmark per experiment.
package gsfl
