// Package gsfl is a from-scratch Go reproduction of "Split Federated
// Learning: Speed up Model Training in Resource-Limited Wireless
// Networks" (Zhang et al., ICDCS 2023; arXiv:2305.18889).
//
// The public surface is three layers. The environment API in gsfl/env
// describes and constructs the simulated world: a fully
// JSON-serializable Spec whose extension points — bandwidth allocator,
// grouping strategy, dataset generator, model architecture — are
// referenced by registered name through four registries
// (RegisterAllocator, RegisterStrategy, RegisterDataset, RegisterArch),
// plus Build with eager field-specific validation and a facade for the
// real-TCP deployment (NewAP, Dial). The run API in gsfl/sim drives one
// scheme: a scheme registry the five schemes self-register into, a
// context-aware Runner built with functional options that streams
// structured RoundEvents as rounds complete, and checkpoint/resume that
// continues killed runs bit-identically (curve, model bits, and latency
// ledgers all match an uninterrupted run). The sweep engine in
// gsfl/sweep drives whole experiment grids: declarative Grids over
// env.Specs expand into jobs with stable content-hash IDs, a Scheduler
// trains N jobs concurrently under a shared worker budget, a Store
// (JSON-lines manifest plus per-job curve CSVs) makes sweeps resumable
// and byte-identical at any concurrency, and the paper's figure/table
// catalogue with its folds is re-exported for harness frontends. The
// population engine in gsfl/pop scales the fixed-fleet world to
// cross-device deployment size: a persistent population of up to
// millions of members held as compact records (never live models),
// churned by registered availability traces and device-profile mixes,
// from which each round deterministically samples a cohort onto the
// Spec's client slots — configured through env.Spec's Population
// fields and swept like any other axis. The fleet plane in gsfl/fleet
// distributes a sweep across processes and machines: a coordinator
// owns the Store and leases jobs to pull-based workers over the
// transport wire, with lease expiry, zombie fencing, and
// checkpoint-sidecar handoff keeping the compacted store byte-identical
// for any worker count or kill schedule. The shared CLI flag vocabulary
// lives in gsfl/cliutil, built on the public API alone; env, sim,
// sweep, pop, and fleet are the only packages allowed to import
// gsfl/internal (enforced by a CI grep and env/boundary_test.go).
//
// The implementation lives under internal/: a tensor and neural-network
// training framework (internal/tensor, internal/nn, internal/loss,
// internal/optim) running on a shared bounded worker pool
// (internal/parallel) with bit-identical results at any worker count,
// the split-model container and architecture registry (internal/model),
// a synthetic GTSRB dataset generator (internal/gtsrb) behind the
// dataset registry (internal/data), a wireless network and device
// simulator (internal/wireless, internal/device, internal/simnet), the
// GSFL scheme itself (internal/gsfl) — whose M groups really train on
// concurrent goroutines — the CL, SL, FL, and SplitFed baselines
// (internal/schemes/...), and the experiment harness that regenerates
// every figure and table from the paper (internal/experiment), itself a
// thin consumer of gsfl/env and gsfl/sim.
//
// Entry points: cmd/gsfl-sim runs one scheme through the run API
// (streaming table or JSON-lines output, checkpoint/resume, population
// sampling via -population/-sample-fraction with live gauges on
// -metrics, -list for the registries), cmd/gsfl-bench regenerates the
// paper's figures and tables as CSV (concurrently with -jobs N,
// byte-identical at any N; -benchpop writes the million-member
// population report),
// cmd/gsfl-sweep runs named or custom experiment grids through the
// sweep engine (concurrent, resumable, kill-safe; grid files may patch
// any env.Spec field; -serve/-worker fan the grid across machines
// through gsfl/fleet), cmd/gsfl-datagen renders synthetic GTSRB
// samples, and cmd/gsfl-ap with cmd/gsfl-client run GSFL as real TCP
// processes — all of them, like the examples, built exclusively on the
// public packages. internal/benchmarks exposes one testing.B benchmark
// per experiment plus serial-vs-parallel speedup benchmarks. README.md
// covers usage (including migration notes for the pre-registry entry
// points and the env.Spec migration); docs/ARCHITECTURE.md covers the
// layer structure, the environment API and its registries, the run API
// and its checkpoint contract, the latency model, and the parallel
// execution engine's determinism contract.
package gsfl
