// Package gsfl is a from-scratch Go reproduction of "Split Federated
// Learning: Speed up Model Training in Resource-Limited Wireless
// Networks" (Zhang et al., ICDCS 2023; arXiv:2305.18889).
//
// The public surface is two layers. The run API in gsfl/sim drives one
// scheme: a scheme registry the five schemes self-register into, a
// context-aware Runner built with functional options that streams
// structured RoundEvents as rounds complete, and checkpoint/resume that
// continues killed runs bit-identically (curve, model bits, and latency
// ledgers all match an uninterrupted run). The sweep engine in
// gsfl/sweep drives whole experiment grids: declarative Grids expand
// into jobs with stable content-hash IDs, a Scheduler trains N jobs
// concurrently under a shared worker budget, and a Store (JSON-lines
// manifest plus per-job curve CSVs) makes sweeps resumable and
// byte-identical at any concurrency.
//
// The implementation lives under internal/: a tensor and neural-network
// training framework (internal/tensor, internal/nn, internal/loss,
// internal/optim) running on a shared bounded worker pool
// (internal/parallel) with bit-identical results at any worker count,
// the split-model container (internal/model), a synthetic GTSRB dataset
// generator (internal/gtsrb), a wireless network and device simulator
// (internal/wireless, internal/device, internal/simnet), the GSFL scheme
// itself (internal/gsfl) — whose M groups really train on concurrent
// goroutines — the CL, SL, FL, and SplitFed baselines
// (internal/schemes/...), and the experiment harness that regenerates
// every figure and table from the paper (internal/experiment), itself
// built on gsfl/sim.
//
// Entry points: cmd/gsfl-sim runs one scheme through the run API
// (streaming table or JSON-lines output, checkpoint/resume),
// cmd/gsfl-bench regenerates the paper's figures and tables as CSV
// (concurrently with -jobs N, byte-identical at any N),
// cmd/gsfl-sweep runs named or custom experiment grids through the
// sweep engine (concurrent, resumable, kill-safe), cmd/gsfl-datagen
// renders synthetic GTSRB samples, and cmd/gsfl-ap with
// cmd/gsfl-client run GSFL as real TCP processes. The root-level
// bench_test.go exposes one testing.B benchmark per experiment plus
// serial-vs-parallel speedup benchmarks. README.md covers usage
// (including migration notes for the pre-registry entry points);
// docs/ARCHITECTURE.md covers the layer structure, the run API and its
// checkpoint contract, the latency model, and the parallel execution
// engine's determinism contract.
package gsfl
