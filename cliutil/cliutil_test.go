package cliutil

import (
	"flag"
	"strings"
	"testing"

	"gsfl/env"
)

func TestParseScale(t *testing.T) {
	for _, name := range []string{"test", "medium", "paper"} {
		sc, err := ParseScale(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sc.Spec.Clients <= 0 || sc.Rounds <= 0 || sc.EvalEvery <= 0 || sc.Target <= 0 {
			t.Fatalf("%s: nonsense scale %+v", name, sc)
		}
	}
	if _, err := ParseScale("bogus"); err == nil {
		t.Fatal("expected error for unknown scale")
	}
}

func TestEnvFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var e EnvFlags
	e.Register(fs)
	if err := fs.Parse([]string{"-alloc", "latmin", "-strategy", "balanced", "-workers", "3"}); err != nil {
		t.Fatal(err)
	}
	spec := env.TestSpec()
	if err := e.Apply(&spec); err != nil {
		t.Fatal(err)
	}
	// Apply canonicalizes aliases, so hashes and CSVs record one name.
	if spec.Alloc != "latency-min" || spec.Strategy != "compute-balanced" || spec.Arch != env.DefaultArch || e.Workers != 3 {
		t.Fatalf("flags not applied: alloc=%s strategy=%s arch=%s workers=%d", spec.Alloc, spec.Strategy, spec.Arch, e.Workers)
	}
	if err := e.Apply(&spec); err != nil {
		t.Fatal(err)
	}
	bad := EnvFlags{Alloc: "nope", Strategy: "roundrobin", Arch: env.DefaultArch}
	if err := bad.Apply(&spec); err == nil {
		t.Fatal("expected allocator error")
	}
	bad = EnvFlags{Alloc: "uniform", Strategy: "nope", Arch: env.DefaultArch}
	if err := bad.Apply(&spec); err == nil {
		t.Fatal("expected strategy error")
	}
	bad = EnvFlags{Alloc: "uniform", Strategy: "roundrobin", Arch: "nope"}
	if err := bad.Apply(&spec); err == nil {
		t.Fatal("expected architecture error")
	}
}

func TestPopFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var p PopFlags
	p.Register(fs)
	if err := fs.Parse([]string{
		"-population", "24", "-sample-fraction", "0.25",
		"-avail-trace", "onoff", "-profile-mix", "low-end:0.5,baseline:0.5",
	}); err != nil {
		t.Fatal(err)
	}
	spec := env.TestSpec()
	if err := p.Apply(&spec); err != nil {
		t.Fatal(err)
	}
	if spec.Population != 24 || spec.SampleFraction != 0.25 ||
		spec.AvailTrace != "onoff" || spec.DeviceProfileMix != "low-end:0.5,baseline:0.5" {
		t.Fatalf("flags not applied: %+v", spec)
	}
	// Zero-valued flags leave the classic world intact.
	spec = env.TestSpec()
	if err := new(PopFlags).Apply(&spec); err != nil {
		t.Fatal(err)
	}
	if spec.Population != 0 || spec.AvailTrace != "" {
		t.Fatalf("zero flags must not configure a population: %+v", spec)
	}
	// Field-specific errors surface the flag at fault.
	bad := PopFlags{Population: 24, SampleFraction: 0.25, AvailTrace: "nope"}
	spec = env.TestSpec()
	if err := bad.Apply(&spec); err == nil || !strings.Contains(err.Error(), "AvailTrace") {
		t.Fatalf("want an AvailTrace error, got %v", err)
	}
}

func TestPrintRegistries(t *testing.T) {
	var sb strings.Builder
	PrintRegistries(&sb)
	out := sb.String()
	// One source of truth: every built-in registry name must appear.
	for _, want := range []string{
		"gsfl", "sl", "fl", "cl", "sfl", // schemes
		"uniform", "proportional-fair", "latency-min", // allocators
		"round-robin", "random", "compute-balanced", // strategies
		"gtsrb-cnn", "deepthin-cnn", "mlp", // archs
		"gtsrb-synth",        // datasets
		"drop", "reuse-last", // straggler policies
		"always-on", "onoff", "diurnal", // availability traces
		"baseline", "low-end", "high-end", // device profiles
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}
}
