// Package cliutil holds the flag vocabulary shared by the harness CLIs
// (gsfl-sim, gsfl-bench, gsfl-sweep): the environment knobs every
// command exposes (-alloc, -strategy, -arch, -numeric, -workers), the -scale
// presets mapping to experiment specs, and the -list registry dump.
// Centralizing them keeps the commands' help text, accepted tokens, and
// defaults identical.
//
// It is built entirely on the public gsfl/env and gsfl/sim packages —
// allocator, strategy, and architecture tokens resolve through the env
// registries, so out-of-tree extensions registered by an embedding
// program show up in help text, -list output, and flag parsing with no
// changes here.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"gsfl/env"
	"gsfl/sim"
)

// EnvFlags are the CLI knobs shared by every harness command. Register
// them on a FlagSet, parse, then Apply onto a Spec.
type EnvFlags struct {
	// Alloc, Strategy, and Arch are registry-name tokens (resolved and
	// canonicalized by Apply).
	Alloc    string
	Strategy string
	Arch     string
	// Numeric is the tensor-kernel numeric mode ("exact" keeps the
	// bit-identical default; "fast" allows FMA reassociation).
	Numeric string
	// Workers is the worker-goroutine budget flag value.
	Workers int
}

// Register declares the shared flags on fs with the harness's canonical
// names, defaults, and help strings. The accepted tokens come from the
// env registries, so help text always matches what is registered.
func (e *EnvFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&e.Alloc, "alloc", "uniform",
		"bandwidth allocator: "+strings.Join(env.Allocators(), "|"))
	fs.StringVar(&e.Strategy, "strategy", "roundrobin",
		"grouping strategy: "+strings.Join(env.Strategies(), "|"))
	fs.StringVar(&e.Arch, "arch", env.DefaultArch,
		"model architecture: "+strings.Join(env.Archs(), "|"))
	fs.StringVar(&e.Numeric, "numeric", env.DefaultNumericMode,
		"tensor-kernel numeric mode: "+strings.Join(env.NumericModes(), "|"))
	fs.IntVar(&e.Workers, "workers", 0, "worker goroutines for parallel execution (0 = GOMAXPROCS, 1 = serial)")
}

// Apply resolves the allocator, strategy, architecture, and numeric-
// mode tokens through the env registries and writes their canonical
// names onto spec. The numeric mode is additionally installed process-
// wide (env.SetNumericMode), so single-run commands whose kernels never
// consult a Spec — gsfl-sim's Runner, checkpoint resume — honor the
// flag too.
func (e *EnvFlags) Apply(spec *env.Spec) error {
	alloc, err := env.CanonicalAllocator(e.Alloc)
	if err != nil {
		return err
	}
	spec.Alloc = alloc
	strategy, err := env.CanonicalStrategy(e.Strategy)
	if err != nil {
		return err
	}
	spec.Strategy = strategy
	arch, err := env.CanonicalArch(e.Arch)
	if err != nil {
		return err
	}
	spec.Arch = arch
	numeric, err := env.CanonicalNumericMode(e.Numeric)
	if err != nil {
		return err
	}
	spec.Numeric = numeric
	return env.SetNumericMode(numeric)
}

// PopFlags are the population-layer knobs (PR 7) a harness command
// exposes alongside EnvFlags. Zero values leave the spec untouched, so
// commands that never pass the flags keep the classic fixed-client
// world.
type PopFlags struct {
	// Population is the persistent member count (0 = no population).
	Population int
	// SampleFraction is the per-round cohort fraction of the population.
	SampleFraction float64
	// AvailTrace and ProfileMix are registry-name tokens (the mix is a
	// "name:weight,…" expression over registered device profiles).
	AvailTrace string
	ProfileMix string
}

// Register declares the population flags on fs. The accepted trace
// tokens come from the env registry, so help text always matches what
// is registered.
func (p *PopFlags) Register(fs *flag.FlagSet) {
	fs.IntVar(&p.Population, "population", 0,
		"persistent client population size (0 = classic fixed-client world)")
	fs.Float64Var(&p.SampleFraction, "sample-fraction", 0,
		"fraction of the population sampled per round (0 = full sampling)")
	fs.StringVar(&p.AvailTrace, "avail-trace", "",
		"availability trace: "+strings.Join(env.AvailTraces(), "|"))
	fs.StringVar(&p.ProfileMix, "profile-mix", "",
		"device-profile mix, name:weight pairs over "+strings.Join(env.DeviceProfiles(), "|"))
}

// Apply writes the population fields onto spec and validates them
// eagerly (field-specific errors, so a CLI typo names the flag at
// fault). The flags ride on Spec validation rather than duplicating
// it.
func (p *PopFlags) Apply(spec *env.Spec) error {
	spec.Population = p.Population
	spec.SampleFraction = p.SampleFraction
	spec.AvailTrace = p.AvailTrace
	spec.DeviceProfileMix = p.ProfileMix
	if err := spec.Validate(); err != nil {
		return err
	}
	return nil
}

// Scale is one -scale preset: the base spec plus the round budget,
// evaluation cadence, and table-1 target accuracy the harness uses at
// that size.
type Scale struct {
	Spec      env.Spec
	Rounds    int
	EvalEvery int
	Target    float64
}

// ParseScale maps a -scale token to its preset.
func ParseScale(name string) (Scale, error) {
	switch name {
	case "test":
		return Scale{Spec: env.TestSpec(), Rounds: 6, EvalEvery: 2, Target: 0.3}, nil
	case "medium":
		spec := env.PaperSpec()
		spec.Clients = 30
		spec.Groups = 6
		spec.ImageSize = 16
		spec.TrainPerClient = 80
		spec.TestPerClass = 5
		spec.Hyper.Batch = 16
		spec.Hyper.StepsPerClient = 2
		spec.Device.N = spec.Clients
		return Scale{Spec: spec, Rounds: 40, EvalEvery: 4, Target: 0.6}, nil
	case "paper":
		return Scale{Spec: env.PaperSpec(), Rounds: 200, EvalEvery: 10, Target: 0.85}, nil
	default:
		return Scale{}, fmt.Errorf("unknown scale %q (want test|medium|paper)", name)
	}
}

// PrintRegistries writes every extension registry's contents — schemes,
// allocators, grouping strategies, model architectures, dataset
// generators, straggler policies, availability traces, device
// profiles — one section per line, to w. It is the single source of
// the -list output shared by gsfl-sim, gsfl-sweep, and the deployment
// commands.
func PrintRegistries(w io.Writer) {
	fmt.Fprintf(w, "schemes:     %s\n", strings.Join(sim.Schemes(), " "))
	fmt.Fprintf(w, "allocators:  %s\n", strings.Join(env.Allocators(), " "))
	fmt.Fprintf(w, "strategies:  %s\n", strings.Join(env.Strategies(), " "))
	fmt.Fprintf(w, "archs:       %s\n", strings.Join(env.Archs(), " "))
	fmt.Fprintf(w, "datasets:    %s\n", strings.Join(env.Datasets(), " "))
	fmt.Fprintf(w, "stragglers:  %s\n", strings.Join(env.StragglerPolicies(), " "))
	fmt.Fprintf(w, "traces:      %s\n", strings.Join(env.AvailTraces(), " "))
	fmt.Fprintf(w, "profiles:    %s\n", strings.Join(env.DeviceProfiles(), " "))
	fmt.Fprintf(w, "numerics:    %s\n", strings.Join(env.NumericModes(), " "))
}
