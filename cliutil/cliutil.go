// Package cliutil holds the flag vocabulary shared by the harness CLIs
// (gsfl-sim, gsfl-bench, gsfl-sweep): the environment knobs every
// command exposes (-alloc, -strategy, -arch, -workers), the -scale
// presets mapping to experiment specs, and the -list registry dump.
// Centralizing them keeps the commands' help text, accepted tokens, and
// defaults identical.
//
// It is built entirely on the public gsfl/env and gsfl/sim packages —
// allocator, strategy, and architecture tokens resolve through the env
// registries, so out-of-tree extensions registered by an embedding
// program show up in help text, -list output, and flag parsing with no
// changes here.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"gsfl/env"
	"gsfl/sim"
)

// EnvFlags are the CLI knobs shared by every harness command. Register
// them on a FlagSet, parse, then Apply onto a Spec.
type EnvFlags struct {
	// Alloc, Strategy, and Arch are registry-name tokens (resolved and
	// canonicalized by Apply).
	Alloc    string
	Strategy string
	Arch     string
	// Workers is the worker-goroutine budget flag value.
	Workers int
}

// Register declares the shared flags on fs with the harness's canonical
// names, defaults, and help strings. The accepted tokens come from the
// env registries, so help text always matches what is registered.
func (e *EnvFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&e.Alloc, "alloc", "uniform",
		"bandwidth allocator: "+strings.Join(env.Allocators(), "|"))
	fs.StringVar(&e.Strategy, "strategy", "roundrobin",
		"grouping strategy: "+strings.Join(env.Strategies(), "|"))
	fs.StringVar(&e.Arch, "arch", env.DefaultArch,
		"model architecture: "+strings.Join(env.Archs(), "|"))
	fs.IntVar(&e.Workers, "workers", 0, "worker goroutines for parallel execution (0 = GOMAXPROCS, 1 = serial)")
}

// Apply resolves the allocator, strategy, and architecture tokens
// through the env registries and writes their canonical names onto
// spec.
func (e *EnvFlags) Apply(spec *env.Spec) error {
	alloc, err := env.CanonicalAllocator(e.Alloc)
	if err != nil {
		return err
	}
	spec.Alloc = alloc
	strategy, err := env.CanonicalStrategy(e.Strategy)
	if err != nil {
		return err
	}
	spec.Strategy = strategy
	arch, err := env.CanonicalArch(e.Arch)
	if err != nil {
		return err
	}
	spec.Arch = arch
	return nil
}

// Scale is one -scale preset: the base spec plus the round budget,
// evaluation cadence, and table-1 target accuracy the harness uses at
// that size.
type Scale struct {
	Spec      env.Spec
	Rounds    int
	EvalEvery int
	Target    float64
}

// ParseScale maps a -scale token to its preset.
func ParseScale(name string) (Scale, error) {
	switch name {
	case "test":
		return Scale{Spec: env.TestSpec(), Rounds: 6, EvalEvery: 2, Target: 0.3}, nil
	case "medium":
		spec := env.PaperSpec()
		spec.Clients = 30
		spec.Groups = 6
		spec.ImageSize = 16
		spec.TrainPerClient = 80
		spec.TestPerClass = 5
		spec.Hyper.Batch = 16
		spec.Hyper.StepsPerClient = 2
		spec.Device.N = spec.Clients
		return Scale{Spec: spec, Rounds: 40, EvalEvery: 4, Target: 0.6}, nil
	case "paper":
		return Scale{Spec: env.PaperSpec(), Rounds: 200, EvalEvery: 10, Target: 0.85}, nil
	default:
		return Scale{}, fmt.Errorf("unknown scale %q (want test|medium|paper)", name)
	}
}

// PrintRegistries writes every extension registry's contents — schemes,
// allocators, grouping strategies, model architectures, dataset
// generators, straggler policies — one section per line, to w. It is
// the single source of the -list output shared by gsfl-sim, gsfl-sweep,
// and the deployment commands.
func PrintRegistries(w io.Writer) {
	fmt.Fprintf(w, "schemes:     %s\n", strings.Join(sim.Schemes(), " "))
	fmt.Fprintf(w, "allocators:  %s\n", strings.Join(env.Allocators(), " "))
	fmt.Fprintf(w, "strategies:  %s\n", strings.Join(env.Strategies(), " "))
	fmt.Fprintf(w, "archs:       %s\n", strings.Join(env.Archs(), " "))
	fmt.Fprintf(w, "datasets:    %s\n", strings.Join(env.Datasets(), " "))
	fmt.Fprintf(w, "stragglers:  %s\n", strings.Join(env.StragglerPolicies(), " "))
}
