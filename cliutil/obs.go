package cliutil

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"

	"gsfl/obs"
)

// ObsFlags are the observability knobs shared by the harness commands:
// -trace writes a Chrome trace_event JSON file (open it in
// chrome://tracing or https://ui.perfetto.dev), -pprof serves the
// net/http/pprof profiling endpoints.
type ObsFlags struct {
	// Trace is the trace output path ("" = tracing off).
	Trace string
	// Pprof is the profiling listen address ("" = off), e.g.
	// "localhost:6060" for http://localhost:6060/debug/pprof/.
	Pprof string
}

// Register declares the shared observability flags on fs.
func (o *ObsFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.Trace, "trace", "", "write Chrome trace_event JSON to `file` (view in chrome://tracing or ui.perfetto.dev)")
	fs.StringVar(&o.Pprof, "pprof", "", "serve net/http/pprof at `addr` (e.g. localhost:6060)")
}

// Start activates what the flags ask for: a tracer on the given clock
// when -trace is set (nil otherwise — the zero-cost disabled state),
// and a pprof HTTP server when -pprof is set. The returned stop
// function writes the trace file; call it once, after the run.
func (o *ObsFlags) Start(clock obs.Clock) (*obs.Tracer, func() error, error) {
	if o.Pprof != "" {
		// Bind synchronously so an unusable address fails the command
		// instead of profiling nothing for the whole run.
		ln, err := net.Listen("tcp", o.Pprof)
		if err != nil {
			return nil, nil, fmt.Errorf("pprof: %w", err)
		}
		go http.Serve(ln, http.DefaultServeMux)
		fmt.Fprintf(os.Stderr, "pprof: serving http://%s/debug/pprof/\n", ln.Addr())
	}
	if o.Trace == "" {
		return nil, func() error { return nil }, nil
	}
	tr := obs.New(clock)
	stop := func() error {
		if err := tr.WriteFile(o.Trace); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: wrote %d events to %s\n", tr.EventCount(), o.Trace)
		return nil
	}
	return tr, stop, nil
}
