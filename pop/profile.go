package pop

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Profile is one device-heterogeneity class: a named compute-speed
// multiplier applied on top of the fleet slot's synthesized FLOPS when
// a member of that class mounts the slot. Profiles capture the
// systematic spread between device generations; the fleet's log-normal
// spread stays as the within-class variation.
type Profile struct {
	// Name is the registry key.
	Name string
	// Speed multiplies the slot's base FLOPS (1.0 = baseline).
	Speed float64
}

var (
	profileMu  sync.RWMutex
	profileReg = map[string]Profile{}
)

// RegisterProfile adds a device profile to the registry. It panics on
// an empty name, a non-positive speed, or a duplicate registration.
func RegisterProfile(p Profile) {
	if p.Name == "" {
		panic("pop: RegisterProfile with empty name")
	}
	if p.Speed <= 0 {
		panic(fmt.Sprintf("pop: profile %q speed %v must be positive", p.Name, p.Speed))
	}
	profileMu.Lock()
	defer profileMu.Unlock()
	if _, dup := profileReg[p.Name]; dup {
		panic(fmt.Sprintf("pop: profile %q registered twice", p.Name))
	}
	profileReg[p.Name] = p
}

// Profiles returns the registered profile names, sorted.
func Profiles() []string {
	profileMu.RLock()
	defer profileMu.RUnlock()
	names := make([]string, 0, len(profileReg))
	for n := range profileReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ProfileByName resolves a registered profile.
func ProfileByName(name string) (Profile, error) {
	profileMu.RLock()
	p, ok := profileReg[name]
	profileMu.RUnlock()
	if !ok {
		return Profile{}, fmt.Errorf("pop: unknown device profile %q (registered: %v)", name, Profiles())
	}
	return p, nil
}

// DefaultProfile is the profile every member gets under an empty mix.
const DefaultProfile = "baseline"

// MixEntry is one component of a device-profile mix.
type MixEntry struct {
	Profile Profile
	// Weight is the entry's population share (normalized over the mix).
	Weight float64
}

// ParseMix parses a device-profile mix of the form
// "name:weight,name:weight" (e.g. "low-end:0.5,baseline:0.5") against
// the profile registry. Weights must be positive and are normalized;
// an empty string yields the all-baseline mix. Entry order is
// preserved — it is part of the mix's identity, since member→profile
// assignment walks the cumulative weights in order.
func ParseMix(s string) ([]MixEntry, error) {
	if strings.TrimSpace(s) == "" {
		base, err := ProfileByName(DefaultProfile)
		if err != nil {
			return nil, err
		}
		return []MixEntry{{Profile: base, Weight: 1}}, nil
	}
	parts := strings.Split(s, ",")
	mix := make([]MixEntry, 0, len(parts))
	seen := map[string]bool{}
	for _, part := range parts {
		name, weightStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("pop: mix entry %q not of the form name:weight", part)
		}
		name = strings.TrimSpace(name)
		p, err := ProfileByName(name)
		if err != nil {
			return nil, err
		}
		if seen[name] {
			return nil, fmt.Errorf("pop: profile %q appears twice in mix %q", name, s)
		}
		seen[name] = true
		w, err := strconv.ParseFloat(strings.TrimSpace(weightStr), 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("pop: mix weight %q for %q must be a positive number", weightStr, name)
		}
		mix = append(mix, MixEntry{Profile: p, Weight: w})
	}
	if len(mix) > 256 {
		return nil, fmt.Errorf("pop: mix has %d entries, max 256 (profile ids are one byte per member)", len(mix))
	}
	total := 0.0
	for _, e := range mix {
		total += e.Weight
	}
	for i := range mix {
		mix[i].Weight /= total
	}
	return mix, nil
}

func init() {
	RegisterProfile(Profile{Name: DefaultProfile, Speed: 1.0})
	RegisterProfile(Profile{Name: "low-end", Speed: 0.35})
	RegisterProfile(Profile{Name: "high-end", Speed: 2.5})
}
