package pop

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Trace models one member's availability process: whether it starts
// online and how long each online/offline dwell lasts, in round units.
// Implementations must be stateless and deterministic — every call's
// randomness arrives through u ∈ [0,1), drawn by the population from
// its counter-based stream, so a trace never holds an RNG of its own.
// That statelessness is what lets a resumed run replay the exact
// availability history from the spec alone, with nothing serialized.
type Trace interface {
	// Name is the registry key.
	Name() string
	// InitialOnline decides the member's state at time zero.
	InitialOnline(u float64) bool
	// NextDuration returns how long the member dwells in the state it
	// just entered (online=true means it just came online). cursor is
	// the member's toggle count — 0 for the initial dwell — which lets
	// periodic traces randomize only the first dwell to spread phases.
	// Return +Inf for "forever" (no further toggles).
	NextDuration(online bool, cursor uint32, u float64) float64
}

var (
	traceMu  sync.RWMutex
	traceReg = map[string]Trace{}
)

// RegisterTrace adds an availability trace to the registry under its
// Name. It panics on an empty name or a duplicate registration —
// programmer errors at init time, matching the env registries.
func RegisterTrace(t Trace) {
	name := t.Name()
	if name == "" {
		panic("pop: RegisterTrace with empty name")
	}
	traceMu.Lock()
	defer traceMu.Unlock()
	if _, dup := traceReg[name]; dup {
		panic(fmt.Sprintf("pop: trace %q registered twice", name))
	}
	traceReg[name] = t
}

// Traces returns the registered trace names, sorted.
func Traces() []string {
	traceMu.RLock()
	defer traceMu.RUnlock()
	names := make([]string, 0, len(traceReg))
	for n := range traceReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TraceByName resolves a registered trace.
func TraceByName(name string) (Trace, error) {
	traceMu.RLock()
	t, ok := traceReg[name]
	traceMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("pop: unknown availability trace %q (registered: %v)", name, Traces())
	}
	return t, nil
}

// DefaultTrace is the trace a population spec gets when none is named:
// every member online forever, which is exactly the classic
// fixed-client world.
const DefaultTrace = "always-on"

// alwaysOn keeps every member online forever.
type alwaysOn struct{}

func (alwaysOn) Name() string                               { return DefaultTrace }
func (alwaysOn) InitialOnline(float64) bool                 { return true }
func (alwaysOn) NextDuration(bool, uint32, float64) float64 { return math.Inf(1) }

// onoff is a memoryless churn process: exponentially distributed dwell
// times with mean 16 rounds online and 8 rounds offline (two-thirds
// steady-state availability), the standard cross-device assumption that
// devices come and go independently.
type onoff struct{}

func (onoff) Name() string { return "onoff" }

func (onoff) InitialOnline(u float64) bool { return u < 16.0/24.0 }

func (onoff) NextDuration(online bool, _ uint32, u float64) float64 {
	mean := 8.0
	if online {
		mean = 16.0
	}
	return -mean * math.Log1p(-u)
}

// diurnal is a day/night cycle: 16 rounds reachable, 8 rounds dark,
// with each member's phase randomized by its initial dwell so the
// population doesn't toggle in lockstep. It models the charging/idle
// windows cross-device FL actually trains in.
type diurnal struct{}

func (diurnal) Name() string { return "diurnal" }

func (diurnal) InitialOnline(u float64) bool { return u < 16.0/24.0 }

func (diurnal) NextDuration(online bool, cursor uint32, u float64) float64 {
	dwell := 8.0
	if online {
		dwell = 16.0
	}
	if cursor == 0 {
		// Uniform position inside the current window spreads phases.
		return u * dwell
	}
	return dwell
}

func init() {
	RegisterTrace(alwaysOn{})
	RegisterTrace(onoff{})
	RegisterTrace(diurnal{})
}
