// Package pop is the client-population engine: the layer that turns
// the paper's fixed N-client world into production-scale cross-device
// federated learning, where each round samples a small cohort from a
// population of up to millions of devices.
//
// A Population holds every member as fixed-width record-array state —
// data-shard ref, device-profile id, RNG cursors, sample stamp,
// availability bit — plus one pending toggle event in a deterministic
// min-heap (internal/simnet's event queue). No member ever owns a live
// model or loader: sampled members mount onto the environment's
// physical client slots for one round (schemes.SlotBinding), so memory
// is O(population · ~30 bytes) + O(slots · model), and per-round work
// is O(cohort + availability toggles), independent of population size.
//
// Availability follows registered churn traces (RegisterTrace:
// "always-on", "onoff", "diurnal") and compute heterogeneity follows
// registered device profiles (RegisterProfile: "baseline", "low-end",
// "high-end") combined through a weighted mix. Every stochastic choice
// comes from a counter-based splitmix64 stream keyed on (seed, salt,
// member/round, cursor), making the cohort of round r a pure function
// of (Config, r): identical across worker counts, and replayable from
// the spec alone — resumed runs call BeginRound with the target round
// and the population fast-forwards through the skipped rounds' toggles
// and draws, with no population state in the checkpoint.
//
// Most programs reach this package through gsfl/env: setting
// Spec.Population (with SampleFraction, AvailTrace, DeviceProfileMix)
// builds and attaches a Population, and the cohort-based schemes
// (gsfl, fl, sfl) draw their per-round client set from it.
package pop
