package pop

import (
	"math"
	"strings"
	"testing"

	"gsfl/internal/schemes"
)

func testConfig() Config {
	return Config{
		Members:    5000,
		Slots:      50,
		Cohort:     20,
		Trace:      "onoff",
		ProfileMix: "low-end:0.3,baseline:0.5,high-end:0.2",
		Seed:       42,
	}
}

// TestDeterminism pins the core contract: two populations built from
// the same config produce identical binding sequences, and a third
// that jumps straight to round R via replay lands on the same cohort.
func TestDeterminism(t *testing.T) {
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 12
	var lastA []schemes.SlotBinding
	for r := 1; r <= rounds; r++ {
		ba, err := a.BeginRound(r)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := b.BeginRound(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(ba) == 0 {
			t.Fatalf("round %d: empty cohort from a 2/3-available population", r)
		}
		if len(ba) != len(bb) {
			t.Fatalf("round %d: cohort sizes differ: %d vs %d", r, len(ba), len(bb))
		}
		for i := range ba {
			if ba[i] != bb[i] {
				t.Fatalf("round %d binding %d: %+v vs %+v", r, i, ba[i], bb[i])
			}
		}
		lastA = append(lastA[:0], ba...)
	}

	// Replay: a fresh population asked directly for round `rounds`.
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	bc, err := c.BeginRound(rounds)
	if err != nil {
		t.Fatal(err)
	}
	if len(bc) != len(lastA) {
		t.Fatalf("replay cohort size %d, want %d", len(bc), len(lastA))
	}
	for i := range bc {
		if bc[i] != lastA[i] {
			t.Fatalf("replay binding %d: %+v, want %+v", i, bc[i], lastA[i])
		}
	}
	if a.Online() != c.Online() {
		t.Fatalf("replay online count %d, want %d", c.Online(), a.Online())
	}
}

// TestBindingInvariants checks the structural promises schemes rely
// on: dense slots in order, unique members, shards within range,
// positive speeds, and no member sampled twice in one round.
func TestBindingInvariants(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 20; r++ {
		binds, err := p.BeginRound(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(binds) > p.CohortTarget() {
			t.Fatalf("round %d: %d bindings exceed cohort target %d", r, len(binds), p.CohortTarget())
		}
		seen := map[int64]bool{}
		for i, b := range binds {
			if b.Slot != i {
				t.Fatalf("round %d: binding %d has slot %d, want dense order", r, i, b.Slot)
			}
			if seen[b.Member] {
				t.Fatalf("round %d: member %d sampled twice", r, b.Member)
			}
			seen[b.Member] = true
			if b.Shard < 0 || b.Shard >= 50 {
				t.Fatalf("round %d: shard %d outside [0,50)", r, b.Shard)
			}
			if b.Shard != int(b.Member)%50 {
				t.Fatalf("round %d: member %d mapped to shard %d, want %d", r, b.Member, b.Shard, int(b.Member)%50)
			}
			if b.Speed <= 0 {
				t.Fatalf("round %d: non-positive speed %v", r, b.Speed)
			}
		}
	}
}

// TestRoundsMustAdvance pins the monotonic-round contract.
func TestRoundsMustAdvance(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.BeginRound(3); err != nil {
		t.Fatal(err)
	}
	if _, err := p.BeginRound(3); err == nil {
		t.Fatal("repeated round accepted")
	}
	if _, err := p.BeginRound(2); err == nil {
		t.Fatal("rewound round accepted")
	}
}

// TestAlwaysOnKeepsEveryoneOnline: the default trace never churns and
// fills the full cohort every round.
func TestAlwaysOnKeepsEveryoneOnline(t *testing.T) {
	cfg := testConfig()
	cfg.Trace = ""
	cfg.ProfileMix = ""
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 5; r++ {
		binds, err := p.BeginRound(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(binds) != cfg.Cohort {
			t.Fatalf("round %d: cohort %d, want full %d", r, len(binds), cfg.Cohort)
		}
		for _, b := range binds {
			if b.Speed != 1.0 {
				t.Fatalf("baseline mix produced speed %v", b.Speed)
			}
		}
	}
	if p.Online() != cfg.Members {
		t.Fatalf("always-on population has %d online, want %d", p.Online(), cfg.Members)
	}
}

// TestLoaderSeedAdvances: a member that participates twice gets a
// different loader seed each time (fresh batch orders on return).
func TestLoaderSeedAdvances(t *testing.T) {
	cfg := testConfig()
	cfg.Members = 50 // tiny population: members recur quickly
	cfg.Slots = 50
	cfg.Cohort = 40
	cfg.Trace = ""
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[int64][]int64{}
	for r := 1; r <= 4; r++ {
		binds, err := p.BeginRound(r)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range binds {
			seeds[b.Member] = append(seeds[b.Member], b.LoaderSeed)
		}
	}
	recurred := 0
	for m, s := range seeds {
		for i := 1; i < len(s); i++ {
			recurred++
			if s[i] == s[i-1] {
				t.Fatalf("member %d reused loader seed %d across participations", m, s[i])
			}
		}
	}
	if recurred == 0 {
		t.Fatal("test vacuous: no member participated twice")
	}
}

// TestProfileMixShares checks the member→profile assignment tracks the
// mix weights.
func TestProfileMixShares(t *testing.T) {
	cfg := testConfig()
	cfg.Members = 100000
	cfg.ProfileMix = "low-end:0.25,baseline:0.75"
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	low := 0
	for _, id := range p.profile {
		if p.mix[id].Profile.Name == "low-end" {
			low++
		}
	}
	got := float64(low) / float64(cfg.Members)
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("low-end share %v, want ~0.25", got)
	}
}

// TestSamplerUniformUnderChurn: the uniform sampler under churn yields
// cohorts that can come up short (non-respondents) but never include
// an offline member.
func TestSamplerUniformUnderChurn(t *testing.T) {
	cfg := testConfig()
	cfg.Sampler = SamplerUniform
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	short := 0
	for r := 1; r <= 30; r++ {
		binds, err := p.BeginRound(r)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range binds {
			if p.isOffline(b.Member) {
				t.Fatalf("round %d: offline member %d bound", r, b.Member)
			}
		}
		if len(binds) < cfg.Cohort {
			short++
		}
	}
	if short == 0 {
		t.Fatal("uniform sampling under 2/3 availability never came up short — non-response not modelled?")
	}
}

// TestSteadyStateAllocFree pins the tentpole's memory contract: after
// construction, BeginRound performs no per-call heap allocation (the
// metrics gauges are atomics, the event queue reuses its array, and
// the bindings slice is recycled).
func TestSteadyStateAllocFree(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := 0
	warm := func() {
		r++
		if _, err := p.BeginRound(r); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	allocs := testing.AllocsPerRun(100, warm)
	if allocs > 0 {
		t.Fatalf("BeginRound allocated %v times per round", allocs)
	}
}

// TestMemoryBound pins the record-array footprint: a million-member
// population stays under 64 MB of resident record storage.
func TestMemoryBound(t *testing.T) {
	cfg := testConfig()
	cfg.Members = 1_000_000
	cfg.Slots = 200
	cfg.Cohort = 200
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.BeginRound(1); err != nil {
		t.Fatal(err)
	}
	if got := p.MemoryBytes(); got > 64<<20 {
		t.Fatalf("1M-member population uses %d bytes of record storage, budget 64 MiB", got)
	}
	perMember := float64(p.MemoryBytes()) / float64(cfg.Members)
	if perMember > 64 {
		t.Fatalf("%.1f bytes/member, want ≤ 64", perMember)
	}
}

// TestConfigValidation covers the constructor's eager checks.
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		edit func(*Config)
		want string
	}{
		{"zero members", func(c *Config) { c.Members = 0 }, "members"},
		{"members below slots", func(c *Config) { c.Members = 10; c.Slots = 50 }, "smaller than slots"},
		{"zero cohort", func(c *Config) { c.Cohort = 0 }, "cohort"},
		{"cohort above slots", func(c *Config) { c.Cohort = 51 }, "cohort"},
		{"unknown trace", func(c *Config) { c.Trace = "nope" }, "unknown availability trace"},
		{"unknown profile", func(c *Config) { c.ProfileMix = "nope:1" }, "unknown device profile"},
		{"bad mix weight", func(c *Config) { c.ProfileMix = "baseline:-1" }, "positive"},
		{"bad mix form", func(c *Config) { c.ProfileMix = "baseline" }, "name:weight"},
		{"dup mix entry", func(c *Config) { c.ProfileMix = "baseline:1,baseline:1" }, "twice"},
	}
	for _, tc := range cases {
		cfg := testConfig()
		tc.edit(&cfg)
		_, err := New(cfg)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestTraceRegistry exercises the registry plumbing end to end.
func TestTraceRegistry(t *testing.T) {
	for _, want := range []string{"always-on", "diurnal", "onoff"} {
		if _, err := TraceByName(want); err != nil {
			t.Errorf("builtin trace %q missing: %v", want, err)
		}
	}
	if _, err := TraceByName("absent"); err == nil {
		t.Error("unknown trace resolved")
	}
	for _, want := range []string{"baseline", "high-end", "low-end"} {
		if _, err := ProfileByName(want); err != nil {
			t.Errorf("builtin profile %q missing: %v", want, err)
		}
	}
}

// TestParseMixNormalizes: weights are scaled to sum to one, order
// preserved.
func TestParseMixNormalizes(t *testing.T) {
	mix, err := ParseMix("high-end:2,low-end:6")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0].Profile.Name != "high-end" || mix[1].Profile.Name != "low-end" {
		t.Fatalf("mix order/contents wrong: %+v", mix)
	}
	if math.Abs(mix[0].Weight-0.25) > 1e-12 || math.Abs(mix[1].Weight-0.75) > 1e-12 {
		t.Fatalf("weights not normalized: %+v", mix)
	}
}
