package pop

import (
	"fmt"
	"math"
	"net/http"

	"gsfl/internal/device"
	"gsfl/internal/metrics"
	"gsfl/internal/schemes"
	"gsfl/internal/simnet"
)

// Sampler selects how the per-round cohort is drawn.
type Sampler int

const (
	// SamplerAvailability draws uniformly from the currently-online
	// members: every sampled member participates. This is what the env
	// layer wires in (under the always-on trace it coincides with
	// SamplerUniform).
	SamplerAvailability Sampler = iota
	// SamplerUniform draws uniformly from the whole population,
	// ignoring availability; sampled members that happen to be offline
	// are counted as non-respondents and yield no binding — the
	// classic FedAvg sampling assumption under churn.
	SamplerUniform
)

// Config describes a population.
type Config struct {
	// Members is the population size P.
	Members int
	// Slots is the number of physical client slots (fleet entries,
	// channel indices, data shards) sampled members mount onto.
	Slots int
	// Cohort is the per-round sampling target K, 1 ≤ K ≤ Slots. A
	// round may bind fewer members when availability is scarce.
	Cohort int
	// Trace names a registered availability trace ("" = always-on).
	Trace string
	// ProfileMix is a ParseMix expression ("" = all baseline).
	ProfileMix string
	// Sampler selects the cohort-draw policy.
	Sampler Sampler
	// Seed derives every stream the population consumes: initial
	// states, dwell durations, sampling draws, loader seeds.
	Seed int64
	// Fleet, when non-nil, receives the per-round device-profile speed
	// multipliers: BeginRound rescales Clients[slot].FLOPS for each
	// bound slot and restores unbound slots to their base capacity.
	Fleet *device.Fleet
}

// Population is a persistent client population held as record arrays:
// ~29 bytes of fixed-width state per member (shard ref, profile id,
// two RNG cursors, sample stamp, availability bit) plus one 16-byte
// entry in the toggle event queue — never a live model, loader, or
// per-member object. A million members fit in well under 64 MB, and
// the steady-state path (BeginRound) allocates nothing: all per-round
// work is O(cohort + toggles), independent of P.
//
// Determinism: every draw comes from a counter-based splitmix64 stream
// keyed by (seed, salt, member-or-round, cursor), so the cohort of
// round r is a pure function of (Config, r) — identical across worker
// counts, and replayable from scratch, which is how resumed runs
// rejoin the stream without any population state in the checkpoint.
type Population struct {
	cfg   Config
	trace Trace
	mix   []MixEntry
	// cum holds the mix's cumulative weights for member assignment.
	cum []float64

	// Record arrays, indexed by member id.
	shard   []uint32 // data shard (slot whose Train entry the member holds)
	profile []uint8  // index into mix
	pcur    []uint32 // participation cursor (advances per sampled round)
	tcur    []uint32 // toggle cursor (advances per availability flip)
	stamp   []uint32 // last round the member was drawn (dedup within a round)
	offline []uint64 // availability bitset (1 = offline)

	online int // current online member count
	events *simnet.EventQueue
	clock  int // last completed BeginRound

	binds     []schemes.SlotBinding // reused across rounds
	baseFLOPS []float64             // fleet capacities before profile scaling

	reg                              *metrics.Registry
	gMembers, gOnline, gOff, gCohort *metrics.Gauge
	cSampled, cRounds                *metrics.Counter
}

// Stream salts separating the population's independent draw purposes.
const (
	saltInit    = 0x9E3779B97F4A7C15
	saltToggle  = 0xC2B2AE3D27D4EB4F
	saltProfile = 0x165667B19E3779F9
	saltSample  = 0x27D4EB2F165667C5
	saltLoader  = 0x85EBCA77C2B2AE63
)

// minDwell bounds dwell durations away from zero so the event loop
// always makes progress.
const minDwell = 1e-3

// New builds a population and plays in its initial availability state.
// Construction is the only O(P) allocation moment; everything after is
// O(cohort + toggles) per round.
func New(cfg Config) (*Population, error) {
	if cfg.Members <= 0 {
		return nil, fmt.Errorf("pop: members %d must be positive", cfg.Members)
	}
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("pop: slots %d must be positive", cfg.Slots)
	}
	if cfg.Members < cfg.Slots {
		return nil, fmt.Errorf("pop: members %d smaller than slots %d", cfg.Members, cfg.Slots)
	}
	if cfg.Cohort < 1 || cfg.Cohort > cfg.Slots {
		return nil, fmt.Errorf("pop: cohort %d outside [1,%d]", cfg.Cohort, cfg.Slots)
	}
	if cfg.Sampler != SamplerAvailability && cfg.Sampler != SamplerUniform {
		return nil, fmt.Errorf("pop: unknown sampler %d", int(cfg.Sampler))
	}
	traceName := cfg.Trace
	if traceName == "" {
		traceName = DefaultTrace
		cfg.Trace = traceName
	}
	trace, err := TraceByName(traceName)
	if err != nil {
		return nil, err
	}
	mix, err := ParseMix(cfg.ProfileMix)
	if err != nil {
		return nil, err
	}
	if cfg.Fleet != nil && cfg.Fleet.N() < cfg.Slots {
		return nil, fmt.Errorf("pop: fleet has %d clients, need %d slots", cfg.Fleet.N(), cfg.Slots)
	}

	p := &Population{
		cfg:     cfg,
		trace:   trace,
		mix:     mix,
		cum:     make([]float64, len(mix)),
		shard:   make([]uint32, cfg.Members),
		profile: make([]uint8, cfg.Members),
		pcur:    make([]uint32, cfg.Members),
		tcur:    make([]uint32, cfg.Members),
		stamp:   make([]uint32, cfg.Members),
		offline: make([]uint64, (cfg.Members+63)/64),
		binds:   make([]schemes.SlotBinding, 0, cfg.Cohort),
	}
	acc := 0.0
	for i, e := range mix {
		acc += e.Weight
		p.cum[i] = acc
	}
	p.cum[len(p.cum)-1] = 1 // guard against float round-off at the top

	evs := make([]simnet.Event, 0, cfg.Members)
	for m := 0; m < cfg.Members; m++ {
		p.shard[m] = uint32(m % cfg.Slots)
		p.profile[m] = p.pickProfile(unitOf(p.draw(saltProfile, uint64(m), 0)))
		online := trace.InitialOnline(unitOf(p.draw(saltInit, uint64(m), 0)))
		if online {
			p.online++
		} else {
			p.offline[m/64] |= 1 << (m % 64)
		}
		dwell := trace.NextDuration(online, 0, unitOf(p.draw(saltToggle, uint64(m), 0)))
		if !math.IsInf(dwell, 1) {
			evs = append(evs, simnet.Event{Time: math.Max(dwell, minDwell), ID: int64(m)})
		}
	}
	p.events = simnet.NewEventQueue(evs)

	if cfg.Fleet != nil {
		p.baseFLOPS = make([]float64, cfg.Slots)
		for i := range p.baseFLOPS {
			p.baseFLOPS[i] = cfg.Fleet.Clients[i].FLOPS
		}
	}

	p.reg = metrics.NewRegistry()
	p.gMembers = p.reg.Gauge("gsfl_pop_members", "population size")
	p.gOnline = p.reg.Gauge("gsfl_pop_online", "members currently online")
	p.gOff = p.reg.Gauge("gsfl_pop_offline", "members currently offline")
	p.gCohort = p.reg.Gauge("gsfl_pop_sampled_round", "members sampled in the last round")
	p.cSampled = p.reg.Counter("gsfl_pop_sampled_total", "cumulative sampled members")
	p.cRounds = p.reg.Counter("gsfl_pop_rounds_total", "rounds the population has served")
	p.gMembers.Set(int64(cfg.Members))
	p.gOnline.Set(int64(p.online))
	p.gOff.Set(int64(cfg.Members - p.online))
	return p, nil
}

// splitmix64 is the mixing function behind every population draw.
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// draw produces the (salt, a, b) member of the population's stream —
// a pure function of the seed, so any draw can be replayed in
// isolation.
func (p *Population) draw(salt, a, b uint64) uint64 {
	z := splitmix64(uint64(p.cfg.Seed) ^ salt)
	z = splitmix64(z ^ a)
	return splitmix64(z ^ b)
}

// unitOf maps a 64-bit draw to [0,1).
func unitOf(u uint64) float64 { return float64(u>>11) / (1 << 53) }

func (p *Population) pickProfile(u float64) uint8 {
	for i, c := range p.cum {
		if u < c {
			return uint8(i)
		}
	}
	return uint8(len(p.cum) - 1)
}

func (p *Population) isOffline(m int64) bool {
	return p.offline[m/64]&(1<<(m%64)) != 0
}

// advanceTo processes every availability toggle due by time t.
func (p *Population) advanceTo(t float64) {
	for p.events.Len() > 0 && p.events.Peek().Time <= t {
		ev := p.events.Pop()
		m := ev.ID
		bit := uint64(1) << (m % 64)
		nowOnline := p.offline[m/64]&bit != 0 // was offline → coming online
		p.offline[m/64] ^= bit
		if nowOnline {
			p.online++
		} else {
			p.online--
		}
		p.tcur[m]++
		dwell := p.trace.NextDuration(nowOnline, p.tcur[m], unitOf(p.draw(saltToggle, uint64(m), uint64(p.tcur[m]))))
		if !math.IsInf(dwell, 1) {
			p.events.Push(simnet.Event{Time: ev.Time + math.Max(dwell, minDwell), ID: m})
		}
	}
}

// sample draws round r's cohort into p.binds. Draw order is a pure
// function of (seed, r): member indices come from the counter-based
// stream keyed by the round and the try number, with the stamp array
// rejecting duplicates. maxTries bounds the rejection walk when
// availability is scarce; the cohort may come up short, never wrong.
func (p *Population) sample(r int) {
	p.binds = p.binds[:0]
	target := p.cfg.Cohort
	if p.cfg.Sampler == SamplerAvailability {
		if p.online == 0 {
			return
		}
		if p.online < target {
			target = p.online
		}
	}
	maxTries := 64*p.cfg.Cohort + 256
	drawn := 0
	for try := 0; try < maxTries; try++ {
		if p.cfg.Sampler == SamplerUniform {
			// Uniform counts distinct drawn members: an offline draw is a
			// non-respondent, consuming one of the K invitations.
			if drawn >= target {
				break
			}
		} else if len(p.binds) >= target {
			break
		}
		m := int64(p.draw(saltSample, uint64(r), uint64(try)) % uint64(p.cfg.Members))
		if p.stamp[m] == uint32(r) {
			continue // already drawn this round
		}
		p.stamp[m] = uint32(r)
		drawn++
		if p.isOffline(m) {
			// Availability-aware: reject and redraw another member.
			continue
		}
		slot := len(p.binds)
		p.pcur[m]++
		p.binds = append(p.binds, schemes.SlotBinding{
			Slot:       slot,
			Member:     m,
			Shard:      int(p.shard[m]),
			LoaderSeed: int64(p.draw(saltLoader, uint64(m), uint64(p.pcur[m]))),
			Speed:      p.mix[p.profile[m]].Profile.Speed,
		})
	}
	p.cSampled.Add(int64(len(p.binds)))
	p.cRounds.Inc()
}

// BeginRound implements schemes.Cohort: it advances availability to
// round r (1-based, strictly increasing), draws the cohort, applies
// device-profile speeds to the fleet, and returns the slot bindings.
// A request that skips ahead — a resumed run whose trainer continues
// at round ckpt+1 — replays every intermediate round's toggles and
// draws, so the population lands exactly where the original run had
// it. The returned slice is reused by the next call.
func (p *Population) BeginRound(round int) ([]schemes.SlotBinding, error) {
	if round <= p.clock {
		return nil, fmt.Errorf("pop: round %d not after completed round %d (rounds must advance)", round, p.clock)
	}
	for r := p.clock + 1; r <= round; r++ {
		p.advanceTo(float64(r))
		p.sample(r)
	}
	p.clock = round

	if f := p.cfg.Fleet; f != nil {
		for i, base := range p.baseFLOPS {
			f.Clients[i].FLOPS = base
		}
		for i := range p.binds {
			b := &p.binds[i]
			f.Clients[b.Slot].FLOPS = p.baseFLOPS[b.Slot] * b.Speed
		}
	}
	p.gOnline.Set(int64(p.online))
	p.gOff.Set(int64(p.cfg.Members - p.online))
	p.gCohort.Set(int64(len(p.binds)))
	return p.binds, nil
}

// Identity implements schemes.Cohort; it is folded into checkpoint env
// fingerprints so resuming under a different population is rejected.
func (p *Population) Identity() string {
	return fmt.Sprintf("pop{members=%d slots=%d cohort=%d trace=%s mix=%q sampler=%d seed=%d}",
		p.cfg.Members, p.cfg.Slots, p.cfg.Cohort, p.cfg.Trace, p.cfg.ProfileMix, int(p.cfg.Sampler), p.cfg.Seed)
}

// BaseCapacities returns a copy of the fleet's FLOPS before
// device-profile scaling (nil when no fleet is attached). Checkpoint
// fingerprints use it instead of the live fleet, whose capacities
// carry the current round's profile multipliers.
func (p *Population) BaseCapacities() []float64 {
	if p.baseFLOPS == nil {
		return nil
	}
	return append([]float64(nil), p.baseFLOPS...)
}

// Members returns the population size.
func (p *Population) Members() int { return p.cfg.Members }

// CohortTarget returns the per-round sampling target K.
func (p *Population) CohortTarget() int { return p.cfg.Cohort }

// Online returns the number of currently-online members.
func (p *Population) Online() int { return p.online }

// Round returns the last round BeginRound completed.
func (p *Population) Round() int { return p.clock }

// MetricsHandler serves the population's operational gauges and
// counters (gsfl_pop_*) in Prometheus text-exposition format — the
// payload behind gsfl-sim's -metrics endpoint.
func (p *Population) MetricsHandler() http.Handler { return p.reg.Handler() }

// MemoryBytes reports the population's resident record storage: the
// per-member arrays plus the event queue and binding buffer. It is the
// quantity BENCH_pop.json bounds.
func (p *Population) MemoryBytes() int64 {
	perMember := int64(cap(p.shard))*4 + int64(cap(p.profile)) +
		int64(cap(p.pcur))*4 + int64(cap(p.tcur))*4 + int64(cap(p.stamp))*4 +
		int64(cap(p.offline))*8
	return perMember + int64(p.events.Cap())*16 + int64(cap(p.binds))*40
}
