package env

import (
	"fmt"
	"math"

	"gsfl/internal/device"
	"gsfl/internal/partition"
	"gsfl/internal/schemes"
	"gsfl/internal/wireless"
	"gsfl/pop"
)

// Default extension names: the values an empty Spec field normalizes
// to, chosen so the zero-ish Spec keeps describing the paper's world.
const (
	// DefaultStrategy is round-robin grouping (the paper's default).
	DefaultStrategy = "round-robin"
	// DefaultDataset is the synthetic-GTSRB generator.
	DefaultDataset = "gtsrb-synth"
	// DefaultArch is the paper's lightweight GTSRB CNN.
	DefaultArch = "gtsrb-cnn"
)

// Spec describes one experimental configuration. Every extension point
// (allocator, grouping strategy, dataset, architecture) is referenced by
// registered name, so a Spec marshals to JSON and back without loss —
// Build(unmarshal(marshal(s))) constructs a world bit-identical to
// Build(s). The zero value is not usable; start from PaperSpec or
// TestSpec and override.
type Spec struct {
	// Clients (N) and Groups (M) set the population structure; the paper
	// uses N=30, M=6.
	Clients int `json:"clients"`
	Groups  int `json:"groups"`
	// Strategy names the registered grouping policy assigning clients to
	// groups ("" = round-robin; see Strategies).
	Strategy string `json:"strategy,omitempty"`
	// Dataset names the registered dataset generator ("" = gtsrb-synth;
	// see Datasets).
	Dataset string `json:"dataset,omitempty"`
	// Arch names the registered model architecture ("" = gtsrb-cnn; see
	// Archs).
	Arch string `json:"arch,omitempty"`
	// ImageSize is the square sample edge length in pixels (32 at paper
	// scale).
	ImageSize int `json:"image_size"`
	// TrainPerClient is each client's private sample count.
	TrainPerClient int `json:"train_per_client"`
	// TestPerClass sizes the balanced held-out test set.
	TestPerClass int `json:"test_per_class"`
	// Alpha is the Dirichlet non-IID concentration; 0 means IID.
	Alpha float64 `json:"alpha"`
	// Cut is the split index into the architecture's layer stack.
	Cut int `json:"cut"`
	// Hyper are the shared optimization hyperparameters.
	Hyper Hyper `json:"hyper"`
	// Alloc names the registered bandwidth-allocation policy (see
	// Allocators). Unlike the other extension fields it has no default:
	// an empty name is a validation error, because the allocator is the
	// knob the paper's future work sweeps.
	Alloc string `json:"alloc"`
	// Device and Wireless override the hardware environment; zero values
	// take the package defaults.
	Device   DeviceConfig   `json:"device"`
	Wireless WirelessConfig `json:"wireless"`
	// Seed derives all randomness.
	Seed int64 `json:"seed"`
	// Pipelined enables communication/computation overlap in GSFL turns.
	Pipelined bool `json:"pipelined,omitempty"`
	// DropoutProb injects per-round client unavailability into GSFL.
	DropoutProb float64 `json:"dropout_prob,omitempty"`
	// Population, when positive, puts a persistent client population of
	// that size behind the Clients physical slots: each round the
	// cohort-based schemes (gsfl, fl, sfl) sample
	// round(SampleFraction×Population) members — capped at Clients —
	// from the currently available population instead of training the
	// fixed client list. Members are compact records (gsfl/pop); the
	// fleet, channel, and datasets stay sized Clients. Zero keeps the
	// classic fixed-client world. A population equal to Clients with
	// SampleFraction 1 under the default trace and mix is exactly that
	// world, and Build treats it as such (no population attached), so
	// numerics stay bit-identical.
	Population int `json:"population,omitempty"`
	// SampleFraction is the per-round sampling fraction in (0,1];
	// 0 normalizes to 1 (sample everyone, bounded by Clients slots).
	// Only meaningful with Population set.
	SampleFraction float64 `json:"sample_fraction,omitempty"`
	// AvailTrace names the registered availability/churn trace driving
	// member online/offline dwell times ("" = always-on; see
	// AvailTraces). Only meaningful with Population set.
	AvailTrace string `json:"avail_trace,omitempty"`
	// DeviceProfileMix is a weighted device-heterogeneity mix,
	// "profile:weight,profile:weight" over registered profiles (see
	// DeviceProfiles); "" assigns every member the baseline profile.
	// Only meaningful with Population set.
	DeviceProfileMix string `json:"device_profile_mix,omitempty"`
	// Numeric names the registered numeric mode the tensor kernels run
	// under ("" = exact; see NumericModes). The default mode is
	// bit-identical at any worker count; other modes (e.g. "fast", the
	// reassociating FMA kernels) trade that for speed and are pinned by
	// tolerance tests. Normalized folds an explicit "exact" back to "",
	// so specs that never leave the default keep byte-identical JSON,
	// job IDs, and checkpoint fingerprints.
	Numeric string `json:"numeric,omitempty"`
}

// PaperSpec is the configuration of the paper's Section III: 30
// clients, 6 groups, GTSRB-scale images, mildly non-IID data.
func PaperSpec() Spec {
	return Spec{
		Clients:        30,
		Groups:         6,
		Strategy:       DefaultStrategy,
		Dataset:        DefaultDataset,
		Arch:           DefaultArch,
		ImageSize:      32,
		TrainPerClient: 200,
		TestPerClass:   10,
		Alpha:          1.0,
		Cut:            3,
		Hyper: Hyper{
			Batch:          16,
			StepsPerClient: 4,
			LR:             0.02,
			Momentum:       0.9,
			ClipNorm:       5,
		},
		Alloc:    "uniform",
		Device:   device.DefaultConfig(30),
		Wireless: wireless.DefaultConfig(),
		Seed:     1,
	}
}

// TestSpec is a minimal configuration for fast CI runs: 6 clients in 2
// groups on 8x8 images.
func TestSpec() Spec {
	s := PaperSpec()
	s.Clients = 6
	s.Groups = 2
	s.ImageSize = 8
	s.TrainPerClient = 40
	s.TestPerClass = 2
	s.Hyper.Batch = 8
	s.Hyper.StepsPerClient = 2
	s.Device = device.DefaultConfig(6)
	return s
}

// Normalized returns the spec with empty extension names replaced by
// their defaults (Strategy, Dataset, Arch — not Alloc, which is
// required). Build, Validate, and the job content hash all operate on
// the normalized form, so an unset field and an explicit default are
// the same configuration.
func (s Spec) Normalized() Spec {
	if s.Strategy == "" {
		s.Strategy = DefaultStrategy
	}
	if s.Dataset == "" {
		s.Dataset = DefaultDataset
	}
	if s.Arch == "" {
		s.Arch = DefaultArch
	}
	if s.Population > 0 {
		if s.AvailTrace == "" {
			s.AvailTrace = pop.DefaultTrace
		}
		if s.SampleFraction == 0 {
			s.SampleFraction = 1
		}
	}
	// The numeric default normalizes the other way — to the empty
	// string — so a spec that spells out "exact" hashes, marshals, and
	// fingerprints identically to one that never mentions numerics.
	if s.Numeric == DefaultNumericMode {
		s.Numeric = ""
	}
	return s
}

// CohortSize returns the per-round sampling target the population
// fields imply: round(SampleFraction × Population), at least 1. It is
// meaningful only when Population is set; Validate bounds it by
// Clients (the physical slot count).
func (s Spec) CohortSize() int {
	s = s.Normalized()
	k := int(math.Round(s.SampleFraction * float64(s.Population)))
	if k < 1 {
		k = 1
	}
	return k
}

// populationActive reports whether Build should attach a population:
// the fields are set AND they describe something other than the
// classic fixed-client world. The identity configuration — population
// == clients, full sampling, always-on, baseline-only — short-circuits
// to the legacy path so its numerics stay bit-identical to a spec with
// no population at all.
func (s Spec) populationActive() bool {
	s = s.Normalized()
	if s.Population <= 0 {
		return false
	}
	identity := s.Population == s.Clients &&
		s.SampleFraction == 1 &&
		s.AvailTrace == pop.DefaultTrace &&
		s.DeviceProfileMix == ""
	return !identity
}

// Validate checks every Spec field eagerly and reports the first
// problem with a field-specific error. Registry-named fields (Alloc,
// Strategy, Dataset, Arch) must resolve; Build performs the remaining
// checks that need the materialized architecture (the cut index upper
// bound).
func (s Spec) Validate() error {
	s = s.Normalized()
	if s.Clients <= 0 {
		return fmt.Errorf("env: Clients %d must be positive", s.Clients)
	}
	if s.Groups <= 0 {
		return fmt.Errorf("env: Groups %d must be positive", s.Groups)
	}
	if s.Groups > s.Clients {
		return fmt.Errorf("env: Groups %d cannot exceed Clients %d", s.Groups, s.Clients)
	}
	if s.ImageSize <= 0 {
		return fmt.Errorf("env: ImageSize %d must be positive", s.ImageSize)
	}
	if s.TrainPerClient <= 0 {
		return fmt.Errorf("env: TrainPerClient %d must be positive", s.TrainPerClient)
	}
	if s.TestPerClass <= 0 {
		return fmt.Errorf("env: TestPerClass %d must be positive", s.TestPerClass)
	}
	if s.Alpha < 0 {
		return fmt.Errorf("env: Alpha %v must be non-negative (0 = IID)", s.Alpha)
	}
	if s.Cut < 0 {
		return fmt.Errorf("env: Cut %d must be non-negative", s.Cut)
	}
	if err := s.Hyper.Validate(); err != nil {
		return fmt.Errorf("env: %w", err)
	}
	if s.Alloc == "" {
		return fmt.Errorf("env: missing allocator (set Spec.Alloc to one of %v)", Allocators())
	}
	if _, err := wireless.ParseAllocator(s.Alloc); err != nil {
		return fmt.Errorf("env: Alloc: %w", err)
	}
	if _, err := partition.ParseStrategy(s.Strategy); err != nil {
		return fmt.Errorf("env: Strategy: %w", err)
	}
	if _, err := CanonicalDataset(s.Dataset); err != nil {
		return fmt.Errorf("env: Dataset: %w", err)
	}
	if _, err := CanonicalArch(s.Arch); err != nil {
		return fmt.Errorf("env: Arch: %w", err)
	}
	if s.DropoutProb < 0 || s.DropoutProb >= 1 {
		return fmt.Errorf("env: DropoutProb %v outside [0,1)", s.DropoutProb)
	}
	if err := s.validatePopulation(); err != nil {
		return err
	}
	if _, err := CanonicalNumericMode(s.Numeric); err != nil {
		return fmt.Errorf("env: Numeric: %w", err)
	}
	return nil
}

// validatePopulation checks the population fields (the spec is already
// normalized). Zero Population requires the satellite fields unset;
// a set Population requires a coherent, registry-resolvable sampling
// configuration.
func (s Spec) validatePopulation() error {
	if s.Population < 0 {
		return fmt.Errorf("env: Population %d must be non-negative (0 = no population layer)", s.Population)
	}
	if s.Population == 0 {
		if s.SampleFraction != 0 {
			return fmt.Errorf("env: SampleFraction %v set without Population", s.SampleFraction)
		}
		if s.AvailTrace != "" {
			return fmt.Errorf("env: AvailTrace %q set without Population", s.AvailTrace)
		}
		if s.DeviceProfileMix != "" {
			return fmt.Errorf("env: DeviceProfileMix %q set without Population", s.DeviceProfileMix)
		}
		return nil
	}
	if s.Population < s.Clients {
		return fmt.Errorf("env: Population %d smaller than Clients %d (members need a data shard each slot)", s.Population, s.Clients)
	}
	if s.SampleFraction <= 0 || s.SampleFraction > 1 {
		return fmt.Errorf("env: SampleFraction %v outside (0,1]", s.SampleFraction)
	}
	if k := s.CohortSize(); k > s.Clients {
		return fmt.Errorf("env: cohort %d (SampleFraction %v × Population %d) exceeds the %d client slots",
			k, s.SampleFraction, s.Population, s.Clients)
	}
	if _, err := CanonicalAvailTrace(s.AvailTrace); err != nil {
		return fmt.Errorf("env: AvailTrace: %w", err)
	}
	if _, err := pop.ParseMix(s.DeviceProfileMix); err != nil {
		return fmt.Errorf("env: DeviceProfileMix: %w", err)
	}
	return nil
}

// EnvSeed derives the env-level seed every scheme RNG stream hangs off.
// Build and data-free architecture probes (the cut-layer ablation's
// size accounting) must agree on it, so it has exactly one definition.
func (s Spec) EnvSeed() int64 { return s.Seed + 4 }

// SchemeOptions maps the Spec's scheme-structure knobs into the run
// API's factory options, resolving the grouping strategy name through
// the registry.
func (s Spec) SchemeOptions() (schemes.FactoryOpts, error) {
	st, err := partition.ParseStrategy(s.Normalized().Strategy)
	if err != nil {
		return schemes.FactoryOpts{}, fmt.Errorf("env: Strategy: %w", err)
	}
	return schemes.FactoryOpts{
		Groups:      s.Groups,
		Strategy:    st,
		Pipelined:   s.Pipelined,
		DropoutProb: s.DropoutProb,
	}, nil
}
