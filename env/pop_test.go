package env_test

import (
	"reflect"
	"strings"
	"testing"

	"gsfl/env"
	"gsfl/sim"
)

// popSpec is the canonical population configuration the tests exercise:
// a 24-member population churning through the on/off trace with a
// heterogeneous device mix, sampled 6 members (= every slot) per round.
func popSpec() env.Spec {
	s := env.TestSpec()
	s.Population = 4 * s.Clients
	s.SampleFraction = 0.25
	s.AvailTrace = "onoff"
	s.DeviceProfileMix = "low-end:0.5,baseline:0.5"
	return s
}

// TestPopulationSpecValidation covers the population-specific eager
// validation, in the same table style as TestSpecValidate.
func TestPopulationSpecValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*env.Spec)
		wantErr string
	}{
		{"negative population", func(s *env.Spec) { s.Population = -1 }, "Population"},
		{"population below clients", func(s *env.Spec) { s.Population = s.Clients - 1 }, "Population"},
		{"fraction without population", func(s *env.Spec) {
			s.Population = 0
			s.SampleFraction = 0.5
			s.AvailTrace = ""
			s.DeviceProfileMix = ""
		}, "SampleFraction"},
		{"trace without population", func(s *env.Spec) { s.Population = 0; s.SampleFraction = 0; s.DeviceProfileMix = "" }, "AvailTrace"},
		{"mix without population", func(s *env.Spec) { s.Population = 0; s.SampleFraction = 0; s.AvailTrace = "" }, "DeviceProfileMix"},
		{"negative fraction", func(s *env.Spec) { s.SampleFraction = -0.1 }, "SampleFraction"},
		{"fraction above one", func(s *env.Spec) { s.SampleFraction = 1.5 }, "SampleFraction"},
		{"cohort exceeds slots", func(s *env.Spec) { s.SampleFraction = 0.5 }, "slots"},
		{"unknown trace", func(s *env.Spec) { s.AvailTrace = "nope" }, "AvailTrace"},
		{"malformed mix", func(s *env.Spec) { s.DeviceProfileMix = "low-end:zero" }, "DeviceProfileMix"},
		{"unknown mix profile", func(s *env.Spec) { s.DeviceProfileMix = "nope:1" }, "DeviceProfileMix"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := popSpec()
			tc.mutate(&spec)
			err := spec.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the field (want %q)", err, tc.wantErr)
			}
			if _, err := env.Build(spec); err == nil {
				t.Fatalf("Build accepted %s", tc.name)
			}
		})
	}
	if err := popSpec().Validate(); err != nil {
		t.Fatalf("the baseline population spec must validate: %v", err)
	}
}

// TestPopulationIdentityFastPath pins the compatibility contract: a
// population that is exactly the classic world — every client a member,
// full sampling, always-on, no profile mix — must not attach a
// population layer at all, so its numerics stay byte-identical to a
// spec with no population fields.
func TestPopulationIdentityFastPath(t *testing.T) {
	spec := env.TestSpec()
	spec.Population = spec.Clients
	spec.SampleFraction = 1

	world, err := env.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if world.Pop != nil {
		t.Fatal("the identity population configuration must short-circuit to the legacy path")
	}

	want := runSpec(t, env.TestSpec(), 3)
	got := runSpec(t, spec, 3)
	if !reflect.DeepEqual(want.Points, got.Points) {
		t.Fatalf("identity population trains differently:\n  want %+v\n  got  %+v", want.Points, got.Points)
	}
}

// TestPopulationAttachesOnActiveConfig: any non-identity population
// configuration must build a live population layer.
func TestPopulationAttachesOnActiveConfig(t *testing.T) {
	world, err := env.Build(popSpec())
	if err != nil {
		t.Fatal(err)
	}
	if world.Pop == nil {
		t.Fatal("an active population configuration must attach a population")
	}
}

// TestPopulationWorkerDeterminism: cohorts are pure functions of
// (seed, round), so a churning, profile-mixed population run must be
// byte-identical at any worker count.
func TestPopulationWorkerDeterminism(t *testing.T) {
	defer sim.SetWorkers(0)
	var want *sim.Curve
	for _, workers := range []int{1, 2, 8} {
		sim.SetWorkers(workers)
		got := runSpec(t, popSpec(), 4)
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(want.Points, got.Points) {
			t.Fatalf("population run diverges at %d workers:\n  want %+v\n  got  %+v", workers, want.Points, got.Points)
		}
	}
}

// TestPopulationSchemeCoverage: fl and sfl draw cohorts from the same
// population layer; both must build and train deterministically, and
// the sequential schemes must refuse a population cleanly.
func TestPopulationSchemeCoverage(t *testing.T) {
	opts, err := popSpec().SchemeOptions()
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"fl", "sfl"} {
		run := func() *sim.Curve {
			world, err := env.Build(popSpec())
			if err != nil {
				t.Fatal(err)
			}
			tr, err := sim.New(scheme, world, opts)
			if err != nil {
				t.Fatal(err)
			}
			c, err := sim.NewRunner(tr, sim.WithRounds(3), sim.WithEvalEvery(1)).Run(t.Context())
			if err != nil {
				t.Fatal(err)
			}
			return c
		}
		if !reflect.DeepEqual(run().Points, run().Points) {
			t.Fatalf("%s: population run is not deterministic", scheme)
		}
	}
	for _, scheme := range []string{"sl", "cl"} {
		world, err := env.Build(popSpec())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.New(scheme, world, opts); err == nil {
			t.Fatalf("%s must reject a population environment", scheme)
		}
	}
}
