package env_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"gsfl/env"
	"gsfl/internal/gsfl"
	"gsfl/internal/model"
)

// runSimRounds drives the in-process simulator for `rounds` rounds and
// returns the aggregated global halves.
func runSimRounds(t *testing.T, spec env.Spec, rounds int) (client, server model.Snapshot) {
	t.Helper()
	world, err := env.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := spec.SchemeOptions()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gsfl.New(world, gsfl.Config{NumGroups: opts.Groups, Strategy: opts.Strategy})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		if _, err := tr.Round(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	return tr.GlobalSnapshots()
}

// runTCPRounds drives the same configuration as a real TCP deployment —
// an AP plus one connected client per shard — and returns the
// aggregated global halves.
func runTCPRounds(t *testing.T, spec env.Spec, rounds int) (client, server model.Snapshot) {
	t.Helper()
	world, err := env.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The group assignment must match the simulator's; it is derived
	// from the env seed, so a fresh trainer reproduces it.
	opts, err := spec.SchemeOptions()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gsfl.New(world, gsfl.Config{NumGroups: opts.Groups, Strategy: opts.Strategy})
	if err != nil {
		t.Fatal(err)
	}

	ap, err := env.NewAP("127.0.0.1:0", env.APConfig{
		Arch:           world.Arch,
		Cut:            world.Cut,
		Groups:         tr.Groups(),
		StepsPerClient: world.Hyper.StepsPerClient,
		LR:             world.Hyper.LR,
		Momentum:       world.Hyper.Momentum,
		ClipNorm:       world.Hyper.ClipNorm,
		LRDecayFactor:  world.Hyper.LRDecayFactor,
		LRDecayEvery:   world.Hyper.LRDecayEvery,
		Test:           world.Test,
		Seed:           world.Seed, // = spec.EnvSeed(): same init stream as the trainer
		Quantize:       world.Hyper.QuantizeTransfers,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	defer wg.Wait()
	defer ap.Shutdown()
	for ci, ds := range world.Train {
		cl, err := env.Dial(ap.Addr(), env.ClientConfig{
			ID:            ci,
			Arch:          world.Arch,
			Cut:           world.Cut,
			Train:         ds,
			Batch:         world.Hyper.Batch,
			LR:            world.Hyper.LR,
			Momentum:      world.Hyper.Momentum,
			ClipNorm:      world.Hyper.ClipNorm,
			LRDecayFactor: world.Hyper.LRDecayFactor,
			LRDecayEvery:  world.Hyper.LRDecayEvery,
			Seed:          world.Seed, // same loader stream as trainer client ci
			Quantize:      world.Hyper.QuantizeTransfers,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cl.Run(); err != nil {
				t.Errorf("client error: %v", err)
			}
		}()
	}
	if err := ap.WaitForClients(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		stats, err := ap.Round()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Stragglers != 0 || stats.Skipped != 0 {
			t.Fatalf("fault-free round produced stats %+v", stats)
		}
	}
	return ap.GlobalSnapshots()
}

// TestTCPRoundMatchesSimulatorBitForBit is the cross-substrate identity
// contract: a fault-free TCP deployment at seed S produces, after any
// number of rounds, the exact global model the in-process simulator
// produces at seed S. Everything that could diverge — init streams,
// loader shuffles, relayed optimizer state, aggregation order and
// weights — is pinned by this test. Two rounds, not one, so the
// cross-round state relays (client optimizer momentum, group replicas)
// are exercised.
func TestTCPRoundMatchesSimulatorBitForBit(t *testing.T) {
	run := func(t *testing.T, spec env.Spec) {
		simC, simS := runSimRounds(t, spec, 2)
		tcpC, tcpS := runTCPRounds(t, spec, 2)
		if d := simC.L2Distance(tcpC); d != 0 {
			t.Errorf("client halves diverged: L2 distance %v", d)
		}
		if d := simS.L2Distance(tcpS); d != 0 {
			t.Errorf("server halves diverged: L2 distance %v", d)
		}
	}
	t.Run("full-precision", func(t *testing.T) {
		run(t, env.TestSpec())
	})
	t.Run("quantized-transfers", func(t *testing.T) {
		spec := env.TestSpec()
		spec.Hyper.QuantizeTransfers = true
		run(t, spec)
	})
}

// TestDeployReExports pins the deployment surface the commands build on.
func TestDeployReExports(t *testing.T) {
	names := env.StragglerPolicies()
	has := map[string]bool{}
	for _, n := range names {
		has[n] = true
	}
	if !has["drop"] || !has["reuse-last"] {
		t.Fatalf("policies %v missing built-ins", names)
	}
	if env.ErrShutdown == nil {
		t.Fatal("ErrShutdown not exported")
	}
	if _, err := env.RunLoadGen(env.LoadGenConfig{}); err == nil {
		t.Fatal("empty loadgen config accepted")
	}
}
