package env

import (
	"fmt"
	"math/rand"

	"gsfl/internal/data"
	"gsfl/internal/device"
	"gsfl/internal/model"
	"gsfl/internal/partition"
	"gsfl/internal/schemes"
	"gsfl/internal/wireless"
	"gsfl/pop"
)

// Build materializes a Spec into the complete simulated world a scheme
// trains in: generated client datasets, a synthesized device fleet, an
// instantiated radio channel, and the split model architecture. The
// Spec is validated eagerly; extension names resolve through the
// registries. Building the same Spec twice — or a Spec that round-trips
// through JSON — produces bit-identical worlds.
func Build(spec Spec) (*Env, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	alloc, err := wireless.ParseAllocator(spec.Alloc)
	if err != nil {
		return nil, fmt.Errorf("env: Alloc: %w", err)
	}
	spec.Device.N = spec.Clients

	src, err := data.NewSource(spec.Dataset, data.SourceConfig{ImageSize: spec.ImageSize, Seed: spec.Seed})
	if err != nil {
		return nil, fmt.Errorf("env: Dataset: %w", err)
	}
	pool := src.Pool(spec.Clients * spec.TrainPerClient)
	testSrc, err := data.NewSource(spec.Dataset, data.SourceConfig{ImageSize: spec.ImageSize, Seed: spec.Seed + 1})
	if err != nil {
		return nil, fmt.Errorf("env: Dataset: %w", err)
	}
	test := testSrc.Balanced(spec.TestPerClass)

	arch, err := model.NewArch(spec.Arch, model.ArchConfig{
		ImageSize: spec.ImageSize,
		Classes:   src.Classes(),
		Seed:      spec.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("env: Arch: %w", err)
	}
	// The cut bound needs the materialized layer stack; probe it with a
	// throwaway RNG (weights are discarded, only the depth matters). The
	// one extra arch construction per Build is noise next to the dataset
	// generation above, and buys a field-specific error instead of a
	// panic deep inside the scheme's split construction.
	if depth := len(arch.Build(rand.New(rand.NewSource(0)))); spec.Cut > depth {
		return nil, fmt.Errorf("env: Cut %d outside [0,%d] for arch %q", spec.Cut, depth, spec.Arch)
	}

	fleet := device.NewFleet(spec.Device, spec.Seed+2)
	channel := wireless.NewChannel(spec.Wireless, spec.Clients, spec.Seed+3)

	world := &schemes.Env{
		Arch:    arch,
		Cut:     spec.Cut,
		Fleet:   fleet,
		Channel: channel,
		Alloc:   alloc,
		Test:    test,
		Hyper:   spec.Hyper,
		Seed:    spec.EnvSeed(),
	}

	partRng := world.Rng("partition", 0)
	var subsets []*data.Subset
	if spec.Alpha > 0 {
		subsets = partition.Dirichlet(pool, spec.Clients, spec.Alpha, partRng)
	} else {
		subsets = partition.IID(pool, spec.Clients, partRng)
	}
	world.Train = make([]data.Dataset, len(subsets))
	for i, s := range subsets {
		world.Train[i] = s
	}
	if err := world.Validate(); err != nil {
		return nil, fmt.Errorf("env: built invalid world: %w", err)
	}

	// Attach the client population when the spec asks for one beyond
	// the identity configuration (population == clients, full sampling,
	// always-on, baseline-only — which IS the classic world, kept on
	// the legacy path so numerics stay bit-identical). The population
	// seed hangs off the spec seed like the other world components
	// (+1 test data, +2 fleet, +3 channel, +5 population).
	if spec.populationActive() {
		p, err := pop.New(pop.Config{
			Members:    spec.Population,
			Slots:      spec.Clients,
			Cohort:     spec.CohortSize(),
			Trace:      spec.AvailTrace,
			ProfileMix: spec.DeviceProfileMix,
			Sampler:    pop.SamplerAvailability,
			Seed:       spec.Seed + 5,
			Fleet:      fleet,
		})
		if err != nil {
			return nil, fmt.Errorf("env: Population: %w", err)
		}
		world.Pop = p
	}
	return world, nil
}
