package env

import "gsfl/internal/tensor"

// NumericMode names one floating-point contract for the tensor kernels.
// The default "exact" mode is bit-identical at any worker count and
// across platforms; a mode with Reassociate set may fuse multiply-adds
// (FMA) in the GEMM micro-kernel — still deterministic on one machine
// at any worker count, but only tolerance-comparable to exact mode.
type NumericMode = tensor.NumericMode

// DefaultNumericMode is the name of the bit-identical default mode.
const DefaultNumericMode = tensor.DefaultNumericMode

// RegisterNumericMode adds a numeric mode to the registry, making it
// usable by name in Spec.Numeric, grid files, and the -numeric flag.
// "exact" and "fast" are built in.
func RegisterNumericMode(mode NumericMode) { tensor.RegisterNumericMode(mode) }

// NumericModes returns the registered numeric-mode names in sorted
// order.
func NumericModes() []string { return tensor.NumericModes() }

// CanonicalNumericMode validates a numeric-mode name against the
// registry and returns its canonical form; the empty name means the
// default mode.
func CanonicalNumericMode(name string) (string, error) {
	return tensor.CanonicalNumericMode(name)
}

// SetNumericMode installs the process-wide numeric mode (the CLI
// -numeric choice). Kernels consult the mode per call, so it must be
// set before a run starts, not mid-round.
func SetNumericMode(name string) error { return tensor.SetNumericMode(name) }

// CurrentNumericMode reports the numeric mode the kernels are running
// under right now.
func CurrentNumericMode() NumericMode { return tensor.CurrentNumericMode() }
