package env

import (
	"fmt"

	"gsfl/internal/data"
	"gsfl/internal/model"
	"gsfl/internal/partition"
	"gsfl/internal/wireless"
	"gsfl/pop"

	// The built-in dataset generator self-registers from its init
	// function; importing gsfl/env therefore makes "gtsrb-synth"
	// available by name (the allocator, strategy, and arch built-ins
	// live in packages env already imports).
	_ "gsfl/internal/gtsrb"
)

// This file is the extension surface of the environment API: four
// registries — allocators, grouping strategies, dataset generators,
// model architectures — each with Register/List/resolve entry points,
// mirroring the scheme registry in gsfl/sim. Register panics on
// duplicate or empty names (programmer errors at init time); resolution
// by unknown name returns an error listing what is registered.

// RegisterAllocator adds a bandwidth-allocation policy under its Name()
// plus any extra aliases, making it usable by name in Spec.Alloc, grid
// files, and the -alloc flag.
func RegisterAllocator(a Allocator, aliases ...string) {
	wireless.RegisterAllocator(a, aliases...)
}

// Allocators returns the canonical names of the registered allocators
// in sorted order.
func Allocators() []string { return wireless.AllocatorNames() }

// NewAllocator resolves an allocator from its canonical name or a
// registered alias ("uniform", "propfair"/"proportional-fair",
// "latmin"/"latency-min", plus anything registered out of tree).
func NewAllocator(name string) (Allocator, error) {
	return wireless.ParseAllocator(name)
}

// CanonicalAllocator resolves an allocator name or alias to its
// canonical Name() — the form job content hashes, manifests, and CSVs
// record.
func CanonicalAllocator(name string) (string, error) {
	a, err := wireless.ParseAllocator(name)
	if err != nil {
		return "", err
	}
	return a.Name(), nil
}

// RegisterStrategy adds a grouping policy under its canonical name,
// making it usable by name in Spec.Strategy, grid files, and the
// -strategy flag.
func RegisterStrategy(name string, fn GroupFunc) {
	partition.RegisterStrategy(name, fn)
}

// Strategies returns the canonical names of the registered grouping
// strategies in sorted order.
func Strategies() []string { return partition.StrategyNames() }

// CanonicalStrategy resolves a strategy name or alias
// ("roundrobin"/"round-robin", "random", "balanced"/"compute-balanced",
// plus anything registered out of tree) to its canonical name.
func CanonicalStrategy(name string) (string, error) {
	st, err := partition.ParseStrategy(name)
	if err != nil {
		return "", err
	}
	return st.String(), nil
}

// GroupClients assigns n clients (identified by index) to m groups
// using the named strategy. capacity carries per-client compute
// capability for capacity-aware strategies (nil otherwise); rng drives
// randomized strategies (nil for deterministic ones). Strategy-specific
// input errors (a missing capacity vector for "compute-balanced", a nil
// rng for "random") come back as errors, not panics — this is a public
// entry point.
func GroupClients(n, m int, strategy string, capacity []float64, rng Rng) (out [][]int, err error) {
	st, err := partition.ParseStrategy(strategy)
	if err != nil {
		return nil, err
	}
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("env: grouping needs positive n=%d m=%d", n, m)
	}
	if m > n {
		return nil, fmt.Errorf("env: %d groups cannot be filled by %d clients", m, n)
	}
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("env: grouping with %q: %v", strategy, r)
		}
	}()
	return partition.Groups(n, m, st, capacity, rng), nil
}

// RegisterDataset adds a dataset generator factory under its name,
// making it usable by name in Spec.Dataset and grid files.
func RegisterDataset(name string, f DatasetFactory) {
	data.RegisterSource(name, f)
}

// Datasets returns the registered dataset names in sorted order.
func Datasets() []string { return data.SourceNames() }

// NewDataset instantiates the named dataset generator.
func NewDataset(name string, cfg DataConfig) (DataSource, error) {
	return data.NewSource(name, cfg)
}

// CanonicalDataset validates a dataset name against the registry
// without instantiating a generator, returning the name job content
// hashes and manifests record (dataset names have no aliases today, so
// the canonical form is the name itself).
func CanonicalDataset(name string) (string, error) {
	for _, n := range data.SourceNames() {
		if n == name {
			return name, nil
		}
	}
	return "", fmt.Errorf("unknown dataset %q (registered: %v)", name, Datasets())
}

// RegisterArch adds a model architecture factory under its name, making
// it usable by name in Spec.Arch, grid files, and the -arch flag.
func RegisterArch(name string, f ArchFactory) {
	model.RegisterArch(name, f)
}

// Archs returns the registered architecture names in sorted order.
func Archs() []string { return model.ArchNames() }

// NewArch instantiates the named architecture.
func NewArch(name string, cfg ArchConfig) (Arch, error) {
	return model.NewArch(name, cfg)
}

// CanonicalArch validates an architecture name against the registry
// without building anything, returning the name job content hashes and
// manifests record (arch names have no aliases today, so the canonical
// form is the name itself).
func CanonicalArch(name string) (string, error) {
	for _, n := range model.ArchNames() {
		if n == name {
			return name, nil
		}
	}
	return "", fmt.Errorf("unknown architecture %q (registered: %v)", name, Archs())
}

// RegisterAvailTrace adds an availability/churn trace under its Name(),
// making it usable by name in Spec.AvailTrace, grid files, and the
// -avail-trace flag.
func RegisterAvailTrace(t AvailTrace) { pop.RegisterTrace(t) }

// AvailTraces returns the registered availability-trace names in sorted
// order.
func AvailTraces() []string { return pop.Traces() }

// CanonicalAvailTrace validates an availability-trace name against the
// registry, returning the name job content hashes and manifests record
// (trace names have no aliases, so the canonical form is the name
// itself).
func CanonicalAvailTrace(name string) (string, error) {
	if _, err := pop.TraceByName(name); err != nil {
		return "", err
	}
	return name, nil
}

// RegisterDeviceProfile adds a device-heterogeneity profile, making it
// usable in Spec.DeviceProfileMix expressions and the -profile-mix
// flag.
func RegisterDeviceProfile(p DeviceProfile) { pop.RegisterProfile(p) }

// DeviceProfiles returns the registered device-profile names in sorted
// order.
func DeviceProfiles() []string { return pop.Profiles() }
