package env_test

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"gsfl/env"
	"gsfl/sim"
)

// runSpec builds the spec's world, trains GSFL for rounds, and returns
// the curve (evaluating every round, so latencies and numerics are both
// pinned).
func runSpec(t *testing.T, spec env.Spec, rounds int) *sim.Curve {
	t.Helper()
	world, err := env.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := spec.SchemeOptions()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.New("gsfl", world, opts)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := sim.NewRunner(tr, sim.WithRounds(rounds), sim.WithEvalEvery(1)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return curve
}

// TestSpecJSONRoundTrip is the serializability contract: marshal →
// unmarshal → Build must produce a bit-identical run versus the
// in-memory Spec (same losses, accuracies, and latencies at every
// evaluation).
func TestSpecJSONRoundTrip(t *testing.T) {
	spec := env.TestSpec()
	spec.Alloc = "latency-min"
	spec.Strategy = "compute-balanced"
	spec.Alpha = 0.5
	spec.Wireless.MobilitySigmaM = 5
	spec.Hyper.QuantizeTransfers = true

	buf, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var restored env.Spec
	if err := json.Unmarshal(buf, &restored); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, restored) {
		t.Fatalf("spec did not round-trip:\n  in  %+v\n  out %+v", spec, restored)
	}

	want := runSpec(t, spec, 3)
	got := runSpec(t, restored, 3)
	if !reflect.DeepEqual(want.Points, got.Points) {
		t.Fatalf("round-tripped spec trains differently:\n  want %+v\n  got  %+v", want.Points, got.Points)
	}
}

// TestSpecNormalizedDefaults: an empty extension name and the explicit
// default describe the same configuration.
func TestSpecNormalizedDefaults(t *testing.T) {
	spec := env.TestSpec()
	spec.Strategy, spec.Dataset, spec.Arch = "", "", ""
	n := spec.Normalized()
	if n.Strategy != env.DefaultStrategy || n.Dataset != env.DefaultDataset || n.Arch != env.DefaultArch {
		t.Fatalf("normalization wrong: %+v", n)
	}
	want := runSpec(t, env.TestSpec(), 2)
	got := runSpec(t, spec, 2)
	if !reflect.DeepEqual(want.Points, got.Points) {
		t.Fatal("empty extension names must build the default world")
	}
}

// TestSpecNumericByteStability pins the numeric field's inverse
// normalization: the default mode is erased from both the normalized
// spec and the JSON encoding, so every spec written before the field
// existed — and every spec that spells the default explicitly —
// produces the same bytes, hashes, and store entries.
func TestSpecNumericByteStability(t *testing.T) {
	plain := env.TestSpec()
	explicit := env.TestSpec()
	explicit.Numeric = env.DefaultNumericMode
	if n := explicit.Normalized(); n.Numeric != "" {
		t.Fatalf("Normalized kept the default numeric mode: %q", n.Numeric)
	}
	bufPlain, err := json.Marshal(plain.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	bufExplicit, err := json.Marshal(explicit.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	if string(bufPlain) != string(bufExplicit) {
		t.Fatalf("explicit default numeric mode changed the spec bytes:\n  %s\n  %s", bufPlain, bufExplicit)
	}
	if strings.Contains(string(bufPlain), "numeric") {
		t.Fatalf("default-mode spec JSON must omit the numeric field: %s", bufPlain)
	}

	fast := env.TestSpec()
	fast.Numeric = "fast"
	if n := fast.Normalized(); n.Numeric != "fast" {
		t.Fatalf("Normalized dropped a non-default numeric mode: %q", n.Numeric)
	}
	if err := fast.Validate(); err != nil {
		t.Fatal(err)
	}
	fast.Numeric = "bogus"
	if err := fast.Validate(); err == nil || !strings.Contains(err.Error(), "Numeric") {
		t.Fatalf("Validate must reject unknown numeric modes, got %v", err)
	}
}

// TestSpecValidate covers the eager field-specific validation Build
// runs before constructing anything.
func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*env.Spec)
		wantErr string
	}{
		{"zero clients", func(s *env.Spec) { s.Clients = 0 }, "Clients"},
		{"negative clients", func(s *env.Spec) { s.Clients = -3 }, "Clients"},
		{"zero groups", func(s *env.Spec) { s.Groups = 0 }, "Groups"},
		{"groups exceed clients", func(s *env.Spec) { s.Groups = s.Clients + 1 }, "Groups"},
		{"zero image size", func(s *env.Spec) { s.ImageSize = 0 }, "ImageSize"},
		{"zero train samples", func(s *env.Spec) { s.TrainPerClient = 0 }, "TrainPerClient"},
		{"zero test samples", func(s *env.Spec) { s.TestPerClass = 0 }, "TestPerClass"},
		{"negative alpha", func(s *env.Spec) { s.Alpha = -1 }, "Alpha"},
		{"negative cut", func(s *env.Spec) { s.Cut = -1 }, "Cut"},
		{"zero batch", func(s *env.Spec) { s.Hyper.Batch = 0 }, "batch"},
		{"zero steps", func(s *env.Spec) { s.Hyper.StepsPerClient = 0 }, "steps"},
		{"missing allocator", func(s *env.Spec) { s.Alloc = "" }, "allocator"},
		{"unknown allocator", func(s *env.Spec) { s.Alloc = "nope" }, "Alloc"},
		{"unknown strategy", func(s *env.Spec) { s.Strategy = "nope" }, "Strategy"},
		{"unknown dataset", func(s *env.Spec) { s.Dataset = "nope" }, "Dataset"},
		{"unknown arch", func(s *env.Spec) { s.Arch = "nope" }, "Arch"},
		{"negative dropout", func(s *env.Spec) { s.DropoutProb = -0.1 }, "DropoutProb"},
		{"dropout of one", func(s *env.Spec) { s.DropoutProb = 1 }, "DropoutProb"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := env.TestSpec()
			tc.mutate(&spec)
			err := spec.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the field (want %q)", err, tc.wantErr)
			}
			if _, err := env.Build(spec); err == nil {
				t.Fatalf("Build accepted %s", tc.name)
			}
		})
	}
	// The cut upper bound needs the materialized arch, so it is a Build
	// check, still field-specific.
	spec := env.TestSpec()
	spec.Cut = 99
	if _, err := env.Build(spec); err == nil || !strings.Contains(err.Error(), "Cut") {
		t.Fatalf("Build must reject an out-of-range cut with a field error, got %v", err)
	}
	if err := env.TestSpec().Validate(); err != nil {
		t.Fatalf("TestSpec must validate: %v", err)
	}
	if err := env.PaperSpec().Validate(); err != nil {
		t.Fatalf("PaperSpec must validate: %v", err)
	}
}

// TestBuildDeterminism: two Builds of one Spec are independent worlds
// that train identically.
func TestBuildDeterminism(t *testing.T) {
	a := runSpec(t, env.TestSpec(), 2)
	b := runSpec(t, env.TestSpec(), 2)
	if !reflect.DeepEqual(a.Points, b.Points) {
		t.Fatal("Build is not deterministic")
	}
}
