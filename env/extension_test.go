package env_test

import (
	"context"
	"sort"
	"sync/atomic"
	"testing"

	"gsfl/env"
	"gsfl/sim"
)

// This file is the out-of-tree usage proof: everything below touches
// only the public gsfl/env and gsfl/sim packages, exactly as an
// external program embedding the library would.

// halfSplit is a custom bandwidth policy: the first listed client gets
// half the budget, the rest share the remainder equally.
type halfSplit struct{ calls *atomic.Int64 }

func (halfSplit) Name() string { return "half-split" }

func (h halfSplit) Allocate(ch *env.Channel, clients []int, budgetHz float64, uplink bool) []float64 {
	h.calls.Add(1)
	out := make([]float64, len(clients))
	if len(out) == 1 {
		out[0] = budgetHz
		return out
	}
	out[0] = budgetHz / 2
	rest := budgetHz / 2 / float64(len(clients)-1)
	for i := 1; i < len(out); i++ {
		out[i] = rest
	}
	return out
}

var (
	allocCalls    atomic.Int64
	stratCalls    atomic.Int64
	extRegistered = registerExtensions()
)

// registerExtensions installs the custom allocator and strategy once,
// at init time, like an out-of-tree package's init function would.
func registerExtensions() bool {
	env.RegisterAllocator(halfSplit{calls: &allocCalls}, "half")
	env.RegisterStrategy("reverse-chunks", func(n, m int, capacity []float64, rng env.Rng) [][]int {
		stratCalls.Add(1)
		// Contiguous chunks assigned back to front: client n-1 lands in
		// group 0.
		out := make([][]int, m)
		for i := 0; i < n; i++ {
			g := (n - 1 - i) % m
			out[g] = append(out[g], i)
		}
		for g := range out {
			sort.Ints(out[g])
		}
		return out
	})
	return true
}

// TestOutOfTreeExtensionEndToEnd registers a custom allocator and
// grouping strategy by name, selects both through a JSON-shaped Spec,
// and runs the result through env.Build + sim.NewRunner.
func TestOutOfTreeExtensionEndToEnd(t *testing.T) {
	if !extRegistered {
		t.Fatal("extensions not registered")
	}
	spec := env.TestSpec()
	spec.Alloc = "half" // alias resolves like a built-in shorthand
	spec.Strategy = "reverse-chunks"

	if err := spec.Validate(); err != nil {
		t.Fatalf("spec naming custom extensions must validate: %v", err)
	}
	if got, err := env.CanonicalAllocator("half"); err != nil || got != "half-split" {
		t.Fatalf("custom alias canonicalization: %q, %v", got, err)
	}

	world, err := env.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := spec.SchemeOptions()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.New("gsfl", world, opts)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := sim.NewRunner(tr, sim.WithRounds(2), sim.WithEvalEvery(1)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 2 {
		t.Fatalf("expected 2 evaluations, got %d", len(curve.Points))
	}
	if allocCalls.Load() == 0 {
		t.Fatal("custom allocator was never consulted")
	}
	if stratCalls.Load() == 0 {
		t.Fatal("custom grouping strategy was never consulted")
	}

	// The custom grouping must actually shape the groups: with 6 clients
	// in 2 groups, reverse-chunks puts odd client indices in group 0.
	groups, err := env.GroupClients(6, 2, "reverse-chunks", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 5}
	if len(groups[0]) != 3 || groups[0][0] != want[0] || groups[0][1] != want[1] || groups[0][2] != want[2] {
		t.Fatalf("custom strategy not dispatched: %v", groups)
	}
}
