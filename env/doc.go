// Package env is the public environment API of the GSFL reproduction:
// the one way to describe and construct the simulated world a training
// scheme runs in, and the extension point for out-of-tree allocators,
// grouping strategies, datasets, and model architectures.
//
// It rests on two ideas:
//
//   - A serializable Spec. Population, data, split point,
//     hyperparameters, hardware, and radio environment are plain fields;
//     the bandwidth allocator, grouping strategy, dataset generator, and
//     model architecture are referenced by registered name — so a whole
//     experiment configuration round-trips through JSON, and a grid file
//     or a remote job queue can carry complete world descriptions.
//     Build materializes a Spec into a *sim.Env after eager,
//     field-specific validation. Building the same Spec twice yields
//     bit-identical worlds.
//
//   - Six registries, mirroring the scheme registry in gsfl/sim.
//     RegisterAllocator, RegisterStrategy, RegisterDataset,
//     RegisterArch, RegisterAvailTrace, and RegisterDeviceProfile add
//     implementations under a name; Allocators, Strategies, Datasets,
//     Archs, AvailTraces, and DeviceProfiles list them; a Spec (or a
//     CLI flag, or a grid-file axis) selects one by that name. The
//     built-ins self-register, so the names "uniform", "round-robin",
//     "gtsrb-synth", "gtsrb-cnn", "onoff", "low-end", … are always
//     available.
//
// Setting Spec.Population (with SampleFraction, AvailTrace, and
// DeviceProfileMix) attaches a persistent client population from
// gsfl/pop: Build constructs the member records and availability event
// queue, and the cohort-based schemes sample from it each round. A Spec
// with Population == Clients and full always-on sampling is the classic
// fixed-fleet world and attaches nothing.
//
// Minimal use:
//
//	spec := env.TestSpec()
//	spec.Alloc = "latency-min"
//	world, err := env.Build(spec)
//	opts, err := spec.SchemeOptions()
//	tr, err := sim.New("gsfl", world, opts)
//	curve, err := sim.NewRunner(tr, sim.WithRounds(50)).Run(ctx)
//
// Extending it (in your own package):
//
//	func init() {
//	    env.RegisterAllocator(MyAllocator{})            // by Name()
//	    env.RegisterStrategy("my-grouping", myGroupFn)
//	}
//	...
//	spec.Alloc, spec.Strategy = "my-allocator", "my-grouping"
//
// The package also re-exports the real-network deployment facade
// (NewAP, Dial) so the TCP protocol demos need no internal imports; see
// deploy.go.
package env
