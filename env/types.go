package env

import (
	"math/rand"

	"gsfl/internal/data"
	"gsfl/internal/device"
	"gsfl/internal/model"
	"gsfl/internal/partition"
	"gsfl/internal/schemes"
	"gsfl/internal/wireless"
	"gsfl/pop"
)

// Aliases re-export the environment vocabulary so Spec fields,
// registry signatures, and the worlds Build returns are fully usable —
// and implementable — without internal imports.
type (
	// Env is the complete simulated world a scheme trains in; Build
	// returns one (the same type the run API's sim.Env names).
	Env = schemes.Env
	// Options carries the scheme-structure knobs SchemeOptions derives
	// (the same type as sim.Options).
	Options = schemes.FactoryOpts
	// Hyper are the shared optimization hyperparameters.
	Hyper = schemes.Hyper
	// DeviceConfig controls device-fleet synthesis (client/server FLOPS).
	DeviceConfig = device.Config
	// WirelessConfig describes the radio environment (bandwidth, power,
	// fading, outages, mobility).
	WirelessConfig = wireless.Config
	// Channel is an instantiated radio environment; allocator
	// implementations receive one for channel-aware decisions.
	Channel = wireless.Channel
	// Allocator splits a bandwidth budget among concurrently
	// transmitting clients; implement it and RegisterAllocator to add a
	// policy.
	Allocator = wireless.Allocator
	// GroupFunc implements a grouping policy; RegisterStrategy adds one
	// by name.
	GroupFunc = partition.GroupFunc
	// Arch describes a model architecture (input shape, classes, layer
	// builder).
	Arch = model.Arch
	// ArchConfig parameterizes a registered architecture factory.
	ArchConfig = model.ArchConfig
	// ArchFactory builds an architecture for a configuration.
	ArchFactory = model.ArchFactory
	// SplitModel is a model cut into client/server halves; Arch.NewSplit
	// produces one and its size accessors drive cut-layer accounting.
	SplitModel = model.SplitModel
	// Dataset is an indexable collection of labelled samples.
	Dataset = data.Dataset
	// InMemory is the slice-backed Dataset implementation generators
	// produce.
	InMemory = data.InMemory
	// Subset is a view of a Dataset through an index list; partitioning
	// produces one per client.
	Subset = data.Subset
	// DataSource is one instantiated dataset generator.
	DataSource = data.Source
	// DataConfig parameterizes a registered dataset generator.
	DataConfig = data.SourceConfig
	// DatasetFactory instantiates a generator from a configuration.
	DatasetFactory = data.SourceFactory
	// Rng is the randomness source threaded through grouping and
	// partitioning helpers.
	Rng = *rand.Rand
	// Cohort is the per-round population-sampling interface a built
	// world carries in Env.Pop (nil in the classic fixed-client world).
	Cohort = schemes.Cohort
	// SlotBinding mounts one sampled population member onto a physical
	// client slot for a round.
	SlotBinding = schemes.SlotBinding
	// AvailTrace models member availability dwell times; implement it
	// and RegisterAvailTrace to add a churn model by name.
	AvailTrace = pop.Trace
	// DeviceProfile is a named compute-speed class for
	// Spec.DeviceProfileMix; RegisterDeviceProfile adds one.
	DeviceProfile = pop.Profile
	// Population is the concrete record-array population engine behind
	// Env.Pop when Spec.Population is set (type-assert Env.Pop to reach
	// its metrics registry and memory accounting).
	Population = pop.Population
)

// DefaultCut is the paper's client/server boundary in the default
// architecture: after the first conv block of "gtsrb-cnn".
const DefaultCut = model.GTSRBCNNDefaultCut

// DefaultDeviceConfig returns the paper-scale fleet configuration for n
// clients (mobile-class SoCs against a GPU-class edge server).
func DefaultDeviceConfig(n int) DeviceConfig { return device.DefaultConfig(n) }

// DefaultWirelessConfig returns the paper's small-cell radio
// deployment: 20 MHz up/down, 23 dBm clients, 30 dBm AP.
func DefaultWirelessConfig() WirelessConfig { return wireless.DefaultConfig() }

// NewChannel instantiates a radio environment for n clients,
// deterministic in seed — what Build does internally, exposed for
// tooling that prices transfers without a full world (e.g. comparing
// allocator policies on a fixed fleet).
func NewChannel(cfg WirelessConfig, n int, seed int64) *Channel {
	return wireless.NewChannel(cfg, n, seed)
}

// PartitionIID splits ds uniformly at random into n near-equal client
// subsets.
func PartitionIID(ds Dataset, n int, rng Rng) []*Subset {
	return partition.IID(ds, n, rng)
}

// PartitionDirichlet splits ds across n clients with class proportions
// drawn from Dir(alpha); small alpha produces highly skewed non-IID
// clients.
func PartitionDirichlet(ds Dataset, n int, alpha float64, rng Rng) []*Subset {
	return partition.Dirichlet(ds, n, alpha, rng)
}
