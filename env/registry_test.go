package env_test

import (
	"strings"
	"testing"

	"gsfl/env"
)

// mustPanic runs f and fails unless it panics with a message containing
// want.
func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v does not contain %q", r, want)
		}
	}()
	f()
}

// dupAllocator is a minimal allocator whose Name collides with the
// built-in uniform policy.
type dupAllocator struct{}

func (dupAllocator) Name() string { return "uniform" }
func (dupAllocator) Allocate(ch *env.Channel, clients []int, budgetHz float64, uplink bool) []float64 {
	out := make([]float64, len(clients))
	for i := range out {
		out[i] = budgetHz / float64(len(clients))
	}
	return out
}

func TestRegistryDuplicatesPanic(t *testing.T) {
	mustPanic(t, "registered twice", func() { env.RegisterAllocator(dupAllocator{}) })
	mustPanic(t, "registered twice", func() {
		env.RegisterStrategy("round-robin", func(n, m int, capacity []float64, rng env.Rng) [][]int { return nil })
	})
	mustPanic(t, "registered twice", func() {
		env.RegisterDataset("gtsrb-synth", func(cfg env.DataConfig) (env.DataSource, error) { return nil, nil })
	})
	mustPanic(t, "registered twice", func() {
		env.RegisterArch("gtsrb-cnn", func(cfg env.ArchConfig) (env.Arch, error) { return env.Arch{}, nil })
	})
	mustPanic(t, "empty", func() {
		env.RegisterStrategy("", func(n, m int, capacity []float64, rng env.Rng) [][]int { return nil })
	})
	mustPanic(t, "nil", func() { env.RegisterArch("ghost", nil) })
}

func TestRegistryUnknownNamesError(t *testing.T) {
	if _, err := env.NewAllocator("no-such-policy"); err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Fatalf("unknown allocator must list what is registered, got %v", err)
	}
	if _, err := env.CanonicalStrategy("no-such-strategy"); err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Fatalf("unknown strategy must list what is registered, got %v", err)
	}
	if _, err := env.NewDataset("no-such-dataset", env.DataConfig{ImageSize: 8}); err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Fatalf("unknown dataset must list what is registered, got %v", err)
	}
	if _, err := env.NewArch("no-such-arch", env.ArchConfig{ImageSize: 8, Classes: 2}); err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Fatalf("unknown arch must list what is registered, got %v", err)
	}
}

func TestRegistryListsIncludeBuiltins(t *testing.T) {
	has := func(list []string, want string) bool {
		for _, n := range list {
			if n == want {
				return true
			}
		}
		return false
	}
	for _, want := range []string{"uniform", "proportional-fair", "latency-min"} {
		if !has(env.Allocators(), want) {
			t.Fatalf("Allocators() missing %q: %v", want, env.Allocators())
		}
	}
	for _, want := range []string{"round-robin", "random", "compute-balanced"} {
		if !has(env.Strategies(), want) {
			t.Fatalf("Strategies() missing %q: %v", want, env.Strategies())
		}
	}
	for _, want := range []string{"gtsrb-cnn", "deepthin-cnn", "mlp"} {
		if !has(env.Archs(), want) {
			t.Fatalf("Archs() missing %q: %v", want, env.Archs())
		}
	}
	if !has(env.Datasets(), "gtsrb-synth") {
		t.Fatalf("Datasets() missing gtsrb-synth: %v", env.Datasets())
	}
}

func TestCanonicalization(t *testing.T) {
	for _, tc := range [][2]string{
		{"propfair", "proportional-fair"},
		{"latmin", "latency-min"},
		{"uniform", "uniform"},
	} {
		got, err := env.CanonicalAllocator(tc[0])
		if err != nil || got != tc[1] {
			t.Fatalf("CanonicalAllocator(%q) = %q, %v; want %q", tc[0], got, err, tc[1])
		}
	}
	for _, tc := range [][2]string{
		{"roundrobin", "round-robin"},
		{"balanced", "compute-balanced"},
		{"random", "random"},
	} {
		got, err := env.CanonicalStrategy(tc[0])
		if err != nil || got != tc[1] {
			t.Fatalf("CanonicalStrategy(%q) = %q, %v; want %q", tc[0], got, err, tc[1])
		}
	}
}

// TestGroupClientsErrorsInsteadOfPanics: the public grouping entry
// point converts strategy-specific input errors into errors.
func TestGroupClientsErrorsInsteadOfPanics(t *testing.T) {
	if _, err := env.GroupClients(6, 2, "compute-balanced", nil, nil); err == nil {
		t.Fatal("compute-balanced without capacities must error, not panic")
	}
	if _, err := env.GroupClients(0, 2, "round-robin", nil, nil); err == nil {
		t.Fatal("n=0 must error")
	}
	if _, err := env.GroupClients(2, 6, "round-robin", nil, nil); err == nil {
		t.Fatal("m>n must error")
	}
	groups, err := env.GroupClients(6, 2, "round-robin", nil, nil)
	if err != nil || len(groups) != 2 {
		t.Fatalf("round-robin grouping failed: %v %v", groups, err)
	}
}
