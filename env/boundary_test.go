package env_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoInternalImportsOutsideShims enforces the public-surface
// contract this package exists for: outside gsfl/internal, only the
// sanctioned shim packages — gsfl/env, gsfl/sim, gsfl/sweep, gsfl/pop,
// gsfl/fleet — may
// import gsfl/internal/... . Commands, examples, and cliutil must build
// entirely on the public API (their non-test sources and their tests
// alike, except the shims' own tests, which may reach behind the
// curtain to set up fixtures). The CI workflow runs the same check as a
// grep so a violation fails fast even when tests are skipped.
func TestNoInternalImportsOutsideShims(t *testing.T) {
	root := ".." // this test lives in <repo>/env
	sanctioned := map[string]bool{"env": true, "sim": true, "sweep": true, "pop": true, "fleet": true}

	fset := token.NewFileSet()
	var violations []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path == root {
				return nil
			}
			name := d.Name()
			if name == "internal" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		top := strings.Split(filepath.ToSlash(rel), "/")[0]
		if sanctioned[top] {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			if strings.HasPrefix(strings.Trim(imp.Path.Value, `"`), "gsfl/internal") {
				violations = append(violations, rel+" imports "+imp.Path.Value)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) > 0 {
		t.Fatalf("gsfl/internal leaked past the env/sim/sweep shims:\n  %s",
			strings.Join(violations, "\n  "))
	}
}
