package env

import (
	"gsfl/internal/transport"
)

// This file re-exports the real-network deployment facade: the same
// GSFL protocol the simulator prices virtually, executed over TCP
// sockets by an access-point process and client processes. It lives in
// the environment API because the AP and its clients are the physical
// counterpart of the simulated world Build constructs — the demos
// (cmd/gsfl-ap, cmd/gsfl-client, examples/network_deployment) assemble
// both from the same vocabulary: a registered architecture, a dataset
// source, and a grouping.

type (
	// AP is the access-point / edge-server side of the deployment: it
	// listens for clients, drives training rounds, and evaluates.
	AP = transport.AP
	// APConfig configures an AP (architecture, cut, groups, test set,
	// server-side hyperparameters, round deadline, straggler policy,
	// metrics endpoint).
	APConfig = transport.APConfig
	// Client is one client node serving training turns.
	Client = transport.Client
	// ClientConfig configures a client (id, architecture, cut, private
	// shard, client-side hyperparameters).
	ClientConfig = transport.ClientConfig
	// RoundStats reports what one network round did: participants,
	// stragglers, skipped and refilled slots, wall-clock duration.
	RoundStats = transport.RoundStats
	// TurnState is the client-side model + optimizer state a straggler
	// policy patches into a group's relay chain.
	TurnState = transport.TurnState
	// StragglerPolicy decides how a relay chain proceeds past a client
	// that missed the round deadline or died mid-turn.
	StragglerPolicy = transport.StragglerPolicy
	// LoadGenConfig sizes a synthetic-fleet load run against one AP.
	LoadGenConfig = transport.LoadGenConfig
	// LoadGenReport is a load run's outcome (what BENCH_tcp.json holds).
	LoadGenReport = transport.LoadGenReport
)

// ErrShutdown is returned by AP.Round after Shutdown.
var ErrShutdown = transport.ErrShutdown

// NewAP starts an access point listening on addr.
func NewAP(addr string, cfg APConfig) (*AP, error) { return transport.NewAP(addr, cfg) }

// Dial connects a client node to an AP and registers it.
func Dial(addr string, cfg ClientConfig) (*Client, error) { return transport.Dial(addr, cfg) }

// RegisterStragglerPolicy adds a named straggler fallback policy,
// selectable through APConfig.Straggler — the extension hook matching
// the scheme/architecture/datasource registries.
func RegisterStragglerPolicy(name string, p StragglerPolicy) {
	transport.RegisterStragglerPolicy(name, p)
}

// StragglerPolicies lists the registered straggler policy names.
func StragglerPolicies() []string { return transport.StragglerPolicies() }

// RunLoadGen drives one AP plus a synthetic client fleet over loopback
// TCP and reports the sustained round throughput.
func RunLoadGen(cfg LoadGenConfig) (*LoadGenReport, error) { return transport.RunLoadGen(cfg) }
