package env

import (
	"gsfl/internal/transport"
)

// This file re-exports the real-network deployment facade: the same
// GSFL protocol the simulator prices virtually, executed over TCP
// sockets by an access-point process and client processes. It lives in
// the environment API because the AP and its clients are the physical
// counterpart of the simulated world Build constructs — the demos
// (cmd/gsfl-ap, cmd/gsfl-client, examples/network_deployment) assemble
// both from the same vocabulary: a registered architecture, a dataset
// source, and a grouping.

type (
	// AP is the access-point / edge-server side of the deployment: it
	// listens for clients, drives training rounds, and evaluates.
	AP = transport.AP
	// APConfig configures an AP (architecture, cut, groups, test set,
	// server-side hyperparameters).
	APConfig = transport.APConfig
	// Client is one client node serving training turns.
	Client = transport.Client
	// ClientConfig configures a client (id, architecture, cut, private
	// shard, client-side hyperparameters).
	ClientConfig = transport.ClientConfig
)

// NewAP starts an access point listening on addr.
func NewAP(addr string, cfg APConfig) (*AP, error) { return transport.NewAP(addr, cfg) }

// Dial connects a client node to an AP and registers it.
func Dial(addr string, cfg ClientConfig) (*Client, error) { return transport.Dial(addr, cfg) }
