// resource_allocation explores the paper's final future-work question:
// how should the AP divide the shared wireless bandwidth among the M
// concurrently transmitting groups?
//
// Three policies are compared on GSFL round latency:
//
//   - uniform:           equal spectrum per active client
//
//   - proportional-fair: spectrum ∝ spectral efficiency (max throughput)
//
//   - latency-min:       spectrum ∝ 1/efficiency (equalize finish times,
//     minimizing the max — what a synchronized round actually waits on)
//
//     go run ./examples/resource_allocation
package main

import (
	"fmt"
	"log"

	"gsfl/env"
	"gsfl/sweep"
)

func main() {
	spec := env.TestSpec()
	spec.Clients = 12
	spec.Groups = 4
	spec.Device.N = spec.Clients
	spec.ImageSize = 12
	spec.TrainPerClient = 40

	// First show what the policies do to a single batch of concurrent
	// uplink transfers (one client per group).
	ch := env.NewChannel(env.DefaultWirelessConfig(), spec.Clients, 7)
	active := []int{0, 3, 6, 9}
	fmt.Println("bandwidth split across 4 concurrent uplink clients (20 MHz budget):")
	for _, name := range env.Allocators() {
		alloc, err := env.NewAllocator(name)
		if err != nil {
			log.Fatal(err)
		}
		ws := alloc.Allocate(ch, active, 20e6, true)
		fmt.Printf("  %-18s", alloc.Name())
		for i, w := range ws {
			fmt.Printf("  client%02d=%5.2fMHz", active[i], w/1e6)
		}
		fmt.Println()
	}

	// Then measure realized GSFL round latency under each policy.
	fmt.Println("\nGSFL mean round latency per policy (6 rounds):")
	res, err := sweep.RunAblationAllocation(spec, 6)
	if err != nil {
		log.Fatal(err)
	}
	best := res[0]
	for _, r := range res {
		fmt.Printf("  %-18s %.4fs\n", r.Allocator, r.RoundLatency)
		if r.RoundLatency < best.RoundLatency {
			best = r
		}
	}
	fmt.Printf("\nbest policy for this fleet: %s\n", best.Allocator)
}
