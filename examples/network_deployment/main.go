// network_deployment runs GSFL as an actual distributed system instead
// of a latency simulation: an AP (edge server) listens on localhost TCP,
// client nodes dial in, and the full protocol — model distribution,
// smashed-data upload, server-side backprop, gradient download,
// client-model relay, FedAvg aggregation — executes over real sockets
// with one goroutine per group on the AP.
//
//	go run ./examples/network_deployment
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"gsfl/env"
)

func main() {
	const (
		nClients = 6
		nGroups  = 2
		rounds   = 8
		imgSize  = 8
	)
	// The world vocabulary comes from the env registries: the default
	// dataset generator and architecture by name, partitioned and
	// grouped with the same helpers the simulator uses.
	src, err := env.NewDataset(env.DefaultDataset, env.DataConfig{ImageSize: imgSize, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	arch, err := env.NewArch(env.DefaultArch, env.ArchConfig{ImageSize: imgSize, Classes: src.Classes()})
	if err != nil {
		log.Fatal(err)
	}
	cut := env.DefaultCut

	// Private data per client plus a test set at the AP.
	pool := src.Pool(nClients * 60)
	parts := env.PartitionIID(pool, nClients, rand.New(rand.NewSource(2)))
	testSrc, err := env.NewDataset(env.DefaultDataset, env.DataConfig{ImageSize: imgSize, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	test := testSrc.Balanced(2)

	groups, err := env.GroupClients(nClients, nGroups, "round-robin", nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	ap, err := env.NewAP("127.0.0.1:0", env.APConfig{
		Arch:           arch,
		Cut:            cut,
		Groups:         groups,
		StepsPerClient: 2,
		LR:             0.02,
		Momentum:       0.9,
		Test:           test,
		Seed:           7,
		// A real deployment bounds each round: a client that stalls past
		// the deadline is patched per the straggler policy and the round
		// completes anyway. Loopback clients never trip this; it documents
		// the production configuration.
		RoundDeadline: 30 * time.Second,
		Straggler:     "drop",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AP listening on %s; groups: %v\n", ap.Addr(), groups)

	// Launch the client nodes (in one process here; each could equally be
	// its own OS process on another machine).
	clientErrs := make(chan error, nClients)
	for ci := 0; ci < nClients; ci++ {
		client, err := env.Dial(ap.Addr(), env.ClientConfig{
			ID:       ci,
			Arch:     arch,
			Cut:      cut,
			Train:    parts[ci],
			Batch:    8,
			LR:       0.02,
			Momentum: 0.9,
			Seed:     int64(100 + ci),
		})
		if err != nil {
			log.Fatal(err)
		}
		go func() { clientErrs <- client.Run() }()
	}
	if err := ap.WaitForClients(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all %d clients registered\n\n", nClients)

	for r := 1; r <= rounds; r++ {
		stats, err := ap.Round()
		if err != nil {
			log.Fatal(err)
		}
		l, a := ap.Evaluate()
		fmt.Printf("round %2d  wall %8s  loss %7.4f  acc %6.2f%%  participants %d\n",
			r, stats.Duration.Round(time.Millisecond), l, a*100, stats.Participants)
	}

	if err := ap.Shutdown(); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nClients; i++ {
		if err := <-clientErrs; err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nall clients exited cleanly")
}
