// failure_injection stress-tests GSFL under the conditions a real
// wireless deployment faces simultaneously: clients that vanish
// mid-training (battery/mobility), transfers that fail and retry (deep
// fades), and clients that physically move between rounds (changing
// their channel quality).
//
// The headline: GSFL degrades gracefully — each round aggregates over
// whoever showed up, and accuracy stays near the failure-free level
// while rounds actually get cheaper.
//
//	go run ./examples/failure_injection
package main

import (
	"context"
	"fmt"
	"log"

	"gsfl/env"
	"gsfl/sim"
)

func main() {
	base := env.TestSpec()
	base.Clients = 8
	base.Groups = 2
	base.Device.N = base.Clients
	base.ImageSize = 12
	base.TrainPerClient = 60
	base.Hyper.StepsPerClient = 3

	type world struct {
		name   string
		mutate func(*env.Spec)
	}
	worlds := []world{
		{"failure-free", func(s *env.Spec) {}},
		{"20% client dropout", func(s *env.Spec) { s.DropoutProb = 0.2 }},
		{"10% link outages", func(s *env.Spec) { s.Wireless.OutageProb = 0.1 }},
		{"mobile clients (20m/round)", func(s *env.Spec) { s.Wireless.MobilitySigmaM = 20 }},
		{"all three at once", func(s *env.Spec) {
			s.DropoutProb = 0.2
			s.Wireless.OutageProb = 0.1
			s.Wireless.MobilitySigmaM = 20
		}},
	}

	const rounds = 16
	fmt.Printf("%-28s %14s %12s\n", "world", "total latency", "final acc")
	for _, w := range worlds {
		spec := base
		w.mutate(&spec)
		world, err := env.Build(spec)
		if err != nil {
			log.Fatal(err)
		}
		opts, err := spec.SchemeOptions()
		if err != nil {
			log.Fatal(err)
		}
		tr, err := sim.New("gsfl", world, opts)
		if err != nil {
			log.Fatal(err)
		}
		curve, err := sim.NewRunner(tr,
			sim.WithRounds(rounds),
			sim.WithEvalEvery(4),
		).Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		last := curve.Points[len(curve.Points)-1]
		fmt.Printf("%-28s %13.3fs %11.2f%%\n", w.name, last.LatencySeconds, curve.FinalAccuracy()*100)
	}
	fmt.Println("\nGSFL aggregates over whoever participates each round; failures cost")
	fmt.Println("accuracy points, not correctness, and dropped clients shorten rounds.")
}
