// gtsrb_gsfl reproduces the paper's Section III evaluation at a reduced
// scale: it trains all four schemes (CL, SL, GSFL, FL) on the synthetic
// GTSRB task, prints the Fig. 2(a)/2(b) series, and writes them as CSV
// under results/example/.
//
//	go run ./examples/gtsrb_gsfl
//
// This takes a few minutes; shrink -rounds for a faster look.
package main

import (
	"flag"
	"fmt"
	"log"

	"gsfl/env"
	"gsfl/sim"
	"gsfl/sweep"
)

func main() {
	rounds := flag.Int("rounds", 24, "training rounds per scheme")
	flag.Parse()

	// Paper structure (30 clients, 6 groups) at reduced image scale so
	// the example finishes in minutes on a laptop CPU.
	spec := env.PaperSpec()
	spec.ImageSize = 12
	spec.TrainPerClient = 60
	spec.TestPerClass = 3
	spec.Hyper.StepsPerClient = 2
	spec.Hyper.Batch = 8

	fmt.Printf("running Fig. 2(a): CL vs SL vs GSFL vs FL, %d rounds each...\n", *rounds)
	curves, err := sweep.RunFig2a(spec, *rounds, 4)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-6s %8s %14s %10s\n", "scheme", "round", "latency(s)", "accuracy")
	for _, c := range curves {
		for _, p := range c.Points {
			fmt.Printf("%-6s %8d %14.2f %9.2f%%\n", c.Scheme, p.Round, p.LatencySeconds, p.Accuracy*100)
		}
	}

	// Headline numbers, mirroring the paper's summary sentences.
	byName := map[string]*sim.Curve{}
	for _, c := range curves {
		byName[c.Scheme] = c
	}
	target := 0.98 * byName["gsfl"].BestAccuracy() // near-converged target
	if s, ok := sim.SpeedupVsRounds(byName["gsfl"], byName["fl"], target); ok {
		fmt.Printf("\nGSFL convergence speedup vs FL (rounds to %.0f%%): %.0f%%\n", target*100, s*100)
	} else {
		fmt.Printf("\nFL did not reach GSFL's near-converged accuracy (%.0f%%) within %d rounds\n",
			target*100, *rounds)
	}
	if red, ok := sim.DelayReduction(byName["gsfl"], byName["sl"], target); ok {
		fmt.Printf("GSFL delay reduction vs SL at the same accuracy: %.2f%% (paper: 31.45%%)\n", red*100)
	}

	if err := sim.SaveCurvesCSV("results/example/fig2a.csv", curves); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nseries written to results/example/fig2a.csv")
}
