// cutlayer_ablation explores the paper's first future-work question:
// how does the choice of cut layer move the latency/accuracy trade-off?
//
// Deeper cuts shrink the smashed data (after pooling layers) but put
// more parameters and FLOPs on the resource-limited client; shallower
// cuts keep clients cheap but upload large activations every step.
//
//	go run ./examples/cutlayer_ablation
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gsfl/env"
	"gsfl/sweep"
)

func main() {
	spec := env.TestSpec()
	spec.ImageSize = 16
	spec.TrainPerClient = 60

	// Static analysis first: what each cut implies, before any training.
	arch, err := env.NewArch(spec.Arch, env.ArchConfig{ImageSize: spec.ImageSize, Classes: 43})
	if err != nil {
		log.Fatal(err)
	}
	nLayers := len(arch.Build(rand.New(rand.NewSource(0))))
	fmt.Println("static cut-layer analysis (batch =", spec.Hyper.Batch, "):")
	fmt.Printf("%4s %22s %18s %16s %16s\n",
		"cut", "smashed bytes/batch", "client params B", "client kFLOPs", "server kFLOPs")
	for cut := 0; cut <= nLayers; cut++ {
		m := arch.NewSplit(rand.New(rand.NewSource(1)), cut)
		fmt.Printf("%4d %22d %18d %16d %16d\n",
			cut, m.SmashedBytes(spec.Hyper.Batch), m.ClientParamBytes(),
			m.ClientFwdFLOPs()/1000, m.ServerFwdFLOPs()/1000)
	}

	// Dynamic sweep: train GSFL briefly at several cuts and compare the
	// realized round latency.
	cuts := []int{1, 3, 6, 9}
	fmt.Println("\ntraining GSFL at each cut (8 rounds each)...")
	res, err := sweep.RunAblationCutLayer(spec, cuts, 8, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%4s %16s %14s\n", "cut", "round latency", "accuracy")
	best := res[0]
	for _, r := range res {
		fmt.Printf("%4d %15.4fs %13.2f%%\n", r.Cut, r.RoundLatency, r.FinalAccuracy*100)
		if r.RoundLatency < best.RoundLatency {
			best = r
		}
	}
	fmt.Printf("\nfastest round latency at cut %d — the latency-optimal split for this fleet\n", best.Cut)
}
