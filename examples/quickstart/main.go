// Quickstart: train GSFL on a small synthetic GTSRB task and watch the
// accuracy/latency curve.
//
// This is the minimal end-to-end use of the library: describe the
// experiment with a Spec, build the trainer, and drive it with RunCurve.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gsfl/internal/experiment"
	"gsfl/internal/schemes"
)

func main() {
	// Start from the fast test-scale spec: 6 clients in 2 groups, 8x8
	// synthetic traffic signs. PaperSpec() is the 30-client/6-group
	// configuration of the paper's Section III.
	spec := experiment.TestSpec()
	spec.TrainPerClient = 80
	spec.Hyper.StepsPerClient = 4

	trainer, err := experiment.NewTrainer(spec, "gsfl")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training GSFL: 6 clients, 2 groups, synthetic GTSRB (8x8)")
	curve := schemes.RunCurve(trainer, 20, 4)

	fmt.Printf("%8s %14s %10s %10s\n", "round", "latency(s)", "loss", "accuracy")
	for _, p := range curve.Points {
		fmt.Printf("%8d %14.3f %10.4f %9.2f%%\n",
			p.Round, p.LatencySeconds, p.Loss, p.Accuracy*100)
	}
	fmt.Printf("\nfinal accuracy %.1f%% after %.2f simulated seconds of training\n",
		curve.FinalAccuracy()*100,
		curve.Points[len(curve.Points)-1].LatencySeconds)
}
