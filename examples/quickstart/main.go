// Quickstart: train GSFL on a small synthetic GTSRB task and watch the
// accuracy/latency curve stream in as rounds complete.
//
// This is the minimal end-to-end use of the library: describe the
// experiment with an env.Spec, build the world with env.Build,
// construct the scheme through the gsfl/sim registry, and drive it with
// a sim.Runner. The
// run is cancellable (Ctrl-C stops it within one round) and every round
// reports through the observer as soon as it finishes.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"gsfl/env"
	"gsfl/sim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Start from the fast test-scale spec: 6 clients in 2 groups, 8x8
	// synthetic traffic signs. PaperSpec() is the 30-client/6-group
	// configuration of the paper's Section III.
	spec := env.TestSpec()
	spec.TrainPerClient = 80
	spec.Hyper.StepsPerClient = 4

	world, err := env.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	opts, err := spec.SchemeOptions()
	if err != nil {
		log.Fatal(err)
	}
	trainer, err := sim.New("gsfl", world, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("training GSFL: 6 clients, 2 groups, synthetic GTSRB (8x8)\n")
	fmt.Printf("registered schemes: %v\n\n", sim.Schemes())
	fmt.Printf("%8s %14s %10s %10s\n", "round", "latency(s)", "loss", "accuracy")

	curve, err := sim.NewRunner(trainer,
		sim.WithRounds(20),
		sim.WithEvalEvery(4),
		sim.WithObserver(sim.ObserverFunc(func(e sim.RoundEvent) {
			if e.Eval == nil {
				return // non-evaluation rounds stream too; print evals only
			}
			fmt.Printf("%8d %14.3f %10.4f %9.2f%%\n",
				e.Round, e.ElapsedSeconds, e.Eval.Loss, e.Eval.Accuracy*100)
		})),
	).Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nfinal accuracy %.1f%% after %.2f simulated seconds of training\n",
		curve.FinalAccuracy()*100,
		curve.Points[len(curve.Points)-1].LatencySeconds)
}
