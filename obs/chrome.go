package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// chromeEvent is one record in the Chrome trace_event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the object-form trace container: an event array plus
// metadata identifying the clock domain.
type chromeFile struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

// WriteJSON serializes the trace as Chrome trace_event JSON. Call it
// after the traced run has finished — it snapshots tracks under the
// tracer lock but does not synchronize with concurrent span emission.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	tracks := make([]*Track, len(t.tracks))
	copy(tracks, t.tracks)
	clock := t.clock
	t.mu.Unlock()

	n := 0
	for _, tk := range tracks {
		n += len(tk.events) + 2 // + process_name/thread_name metadata
	}
	evs := make([]chromeEvent, 0, n)

	// Metadata first: name the process groups and lanes, and pin lane
	// order to creation order (groups appear in index order, not in the
	// viewer's default name sort).
	seenPid := map[int]bool{}
	for _, tk := range tracks {
		if !seenPid[tk.pid] {
			seenPid[tk.pid] = true
			evs = append(evs, chromeEvent{
				Name: "process_name", Ph: "M", Pid: tk.pid,
				Args: map[string]any{"name": tk.process},
			})
		}
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: tk.pid, Tid: tk.tid,
			Args: map[string]any{"name": tk.thread},
		})
		evs = append(evs, chromeEvent{
			Name: "thread_sort_index", Ph: "M", Pid: tk.pid, Tid: tk.tid,
			Args: map[string]any{"sort_index": tk.tid},
		})
	}
	for _, tk := range tracks {
		for _, e := range tk.events {
			ce := chromeEvent{
				Name: e.name, Cat: e.cat, Ts: e.ts * 1e6,
				Pid: tk.pid, Tid: tk.tid,
			}
			switch e.ph {
			case 'X':
				ce.Ph = "X"
				d := e.dur * 1e6
				ce.Dur = &d
			case 'i':
				ce.Ph = "i"
				ce.S = "t" // thread-scoped instant
			default:
				continue
			}
			if e.note != "" {
				ce.Args = map[string]any{"note": e.note}
			}
			evs = append(evs, ce)
		}
	}
	// Stable output: viewers don't require time order, but deterministic
	// files diff cleanly and make the CI schema check reproducible.
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Ts != evs[j].Ts {
			return evs[i].Ts < evs[j].Ts
		}
		if evs[i].Pid != evs[j].Pid {
			return evs[i].Pid < evs[j].Pid
		}
		return evs[i].Tid < evs[j].Tid
	})

	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{
		TraceEvents:     evs,
		DisplayTimeUnit: "ms",
		OtherData: map[string]string{
			"clock": string(clock),
			"tool":  "gsfl/obs",
		},
	})
}

// WriteFile writes the trace to path (see WriteJSON).
func (t *Tracer) WriteFile(path string) error {
	if t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: create trace file: %w", err)
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: write trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: close trace file: %w", err)
	}
	return nil
}

// EventCount returns the number of recorded span/instant events across
// all tracks (metadata excluded). Mainly for tests and end-of-run logs.
func (t *Tracer) EventCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, tk := range t.tracks {
		n += len(tk.events)
	}
	return n
}
