package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestNilTracerIsFree pins the disabled fast path: every call through a
// nil tracer/track must be a no-op with zero allocations — the property
// that lets the schemes and transport hot paths stay instrumented
// without perturbing their MaxAllocs budgets.
func TestNilTracerIsFree(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		if tr.On() {
			t.Fatal("nil tracer reports On")
		}
		tk := tr.Lane("p", "t")
		if tk.On() {
			t.Fatal("nil track reports On")
		}
		tk.Seek(1)
		tk.Span("s", "c", 2)
		tk.SpanAt("s", "c", 0, 1)
		tk.Begin("b", "c")
		tk.End()
		tk.Instant("i", "c", "")
		sp := tk.BeginWall("w", "c")
		sp.End()
		sp.EndNote("n")
		tk.WallSpanAt("w", "c", time.Time{}, 0)
		tk.WallInstant("w", "c", "")
		tr.Advance(1)
		_ = tr.Now()
		_ = tr.Clock()
		_ = tr.EventCount()
		if err := tr.WriteJSON(nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocated %.1f per run, want 0", allocs)
	}
}

func TestVirtualSpansAndCursor(t *testing.T) {
	tr := New(ClockVirtual)
	tk := tr.Lane("sim", "group 0")
	tk.Seek(10)
	tk.Begin("client 3", "client")
	tk.Span("client-compute", "phase", 2)
	tk.Span("uplink", "phase", 0.5)
	tk.End()
	if got := tk.Cursor(); got != 12.5 {
		t.Fatalf("cursor = %v, want 12.5", got)
	}
	if n := tr.EventCount(); n != 3 {
		t.Fatalf("EventCount = %d, want 3", n)
	}
	if now := tr.Advance(12.5); now != 12.5 {
		t.Fatalf("Advance = %v, want 12.5", now)
	}
	if now := tr.Now(); now != 12.5 {
		t.Fatalf("Now = %v, want 12.5", now)
	}
}

func TestLaneIdentityAndPids(t *testing.T) {
	tr := New(ClockVirtual)
	a := tr.Lane("sim", "group 0")
	b := tr.Lane("sim", "group 0")
	if a != b {
		t.Fatal("Lane must return the same track for the same name")
	}
	c := tr.Lane("sim", "group 1")
	d := tr.Lane("ap", "rounds")
	if a.pid != c.pid {
		t.Fatal("tracks in the same process must share a pid")
	}
	if a.pid == d.pid {
		t.Fatal("tracks in different processes must not share a pid")
	}
	if a.tid == c.tid {
		t.Fatal("distinct lanes must get distinct tids")
	}
}

// TestChromeJSONShape validates the exported file against the
// trace_event schema essentials: an object with a traceEvents array
// whose entries carry name/ph/ts/pid/tid, complete events a dur,
// metadata naming every lane, and clock metadata in otherData.
func TestChromeJSONShape(t *testing.T) {
	tr := New(ClockVirtual)
	tk := tr.Lane("sim", "rounds")
	tk.Span("round 1", "round", 3)
	tk.Instant("eval", "eval", "acc=0.5")
	g := tr.Lane("sim", "group 0")
	g.Seek(0)
	g.Span("uplink", "phase", 1.5)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any  `json:"traceEvents"`
		OtherData   map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if file.OtherData["clock"] != "virtual" {
		t.Fatalf("otherData.clock = %q, want virtual", file.OtherData["clock"])
	}
	var spans, instants, threadNames int
	for _, e := range file.TraceEvents {
		for _, k := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := e[k]; !ok {
				t.Fatalf("event missing %q: %v", k, e)
			}
		}
		switch e["ph"] {
		case "X":
			if _, ok := e["dur"]; !ok {
				t.Fatalf("complete event missing dur: %v", e)
			}
			spans++
		case "i":
			instants++
		case "M":
			if e["name"] == "thread_name" {
				threadNames++
			}
		}
	}
	if spans != 2 || instants != 1 {
		t.Fatalf("got %d spans, %d instants; want 2, 1", spans, instants)
	}
	if threadNames != 2 {
		t.Fatalf("got %d thread_name metadata events, want 2", threadNames)
	}
	// round 1 spans [0s,3s] → ts 0µs dur 3e6µs on the virtual clock.
	if !strings.Contains(buf.String(), `"dur":3000000`) {
		t.Fatalf("expected 3s span as 3000000µs in %s", buf.String())
	}
}

func TestWallSpans(t *testing.T) {
	tr := New(ClockWall)
	tk := tr.Lane("ap", "group 0")
	sp := tk.BeginWall("turn", "turn")
	time.Sleep(time.Millisecond)
	sp.End()
	tk.WallInstant("straggler", "fault", "client 3: deadline")
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file chromeFile
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, e := range file.TraceEvents {
		if e.Ph == "X" && e.Name == "turn" {
			found = true
			if e.Dur == nil || *e.Dur < 500 { // at least 0.5ms in µs
				t.Fatalf("turn span dur = %v, want >= 500µs", e.Dur)
			}
			if e.Ts < 0 {
				t.Fatalf("turn span ts = %v, want >= 0", e.Ts)
			}
		}
		if e.Ph == "i" && e.Name == "straggler" {
			if e.Args["note"] != "client 3: deadline" {
				t.Fatalf("instant note = %v", e.Args)
			}
		}
	}
	if !found {
		t.Fatal("no turn span in trace")
	}
}

func TestWriteFile(t *testing.T) {
	tr := New(ClockVirtual)
	tr.Lane("sim", "rounds").Span("round 1", "round", 1)
	path := t.TempDir() + "/trace.json"
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var nilTr *Tracer
	if err := nilTr.WriteFile(path + ".none"); err != nil {
		t.Fatal(err)
	}
}

func TestUnbalancedEndIgnored(t *testing.T) {
	tr := New(ClockVirtual)
	tk := tr.Lane("sim", "x")
	tk.End() // must not panic
	if n := tr.EventCount(); n != 0 {
		t.Fatalf("EventCount = %d, want 0", n)
	}
}
