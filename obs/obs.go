// Package obs provides execution tracing for gsfl: spans over the round
// lifecycle (round → group → client-slot → phase), exported as Chrome
// trace_event JSON loadable in chrome://tracing or https://ui.perfetto.dev,
// plus a bounded flight recorder for post-mortem forensics.
//
// Two clocks coexist:
//
//   - The virtual clock prices spans in latency-model seconds — the
//     simulator's currency. Each Track keeps a cursor in virtual
//     seconds; Span/Begin/End advance it as the latency ledgers accrue.
//   - The wall clock prices spans in host time via BeginWall/End, used
//     by the TCP deployment (internal/transport) and the sweep
//     scheduler, where real elapsed time is the quantity of interest.
//
// A Tracer is a set of Tracks (one horizontal lane each in the trace
// viewer, grouped by process name). Every method on *Tracer and *Track
// is nil-safe: a nil tracer is the disabled state, and the whole API
// degrades to branch-on-nil with zero allocations, so instrumented hot
// paths stay allocation-free when tracing is off. Call sites that would
// compute span names (fmt.Sprintf etc.) should guard on Track.On().
//
// Not to be confused with gsfl/internal/trace, which writes *figure
// data* — accuracy/latency curve CSVs for the paper's plots. This
// package records *execution*: where time goes inside a round.
//
// Concurrency: Track creation (Tracer.Lane) and global virtual-clock
// access are mutex-guarded and safe from any goroutine. Span emission
// on a single Track is not synchronized — each Track must be owned by
// one goroutine at a time (the natural shape: one lane per group
// goroutine, per sweep job, per runner).
package obs

import (
	"fmt"
	"sync"
	"time"
)

// Clock names the time base a tracer's spans are priced in. It is
// recorded in the trace file's metadata so a reader knows whether "ts"
// means modelled seconds or host seconds.
type Clock string

const (
	// ClockVirtual prices spans in latency-model seconds (simulator).
	ClockVirtual Clock = "virtual"
	// ClockWall prices spans in host wall-clock seconds (deployment).
	ClockWall Clock = "wall"
)

// Tracer collects spans across a set of tracks and serializes them as
// Chrome trace_event JSON. The zero value is not usable; construct with
// New. A nil *Tracer is the disabled tracer: every method is a no-op.
type Tracer struct {
	mu     sync.Mutex
	clock  Clock
	epoch  time.Time // wall-clock zero point for BeginWall spans
	vnow   float64   // global virtual-clock "now", seconds
	tracks []*Track
	lanes  map[laneKey]*Track
	pids   map[string]int
}

type laneKey struct{ process, thread string }

// New returns an enabled tracer whose spans are priced in the given
// clock. The wall-clock epoch (ts=0) is the moment of the call.
func New(clock Clock) *Tracer {
	return &Tracer{
		clock: clock,
		epoch: time.Now(),
		lanes: make(map[laneKey]*Track),
		pids:  make(map[string]int),
	}
}

// On reports whether the tracer is enabled. Guard any span-name
// computation (fmt.Sprintf and friends) behind it so the disabled path
// stays allocation-free.
func (t *Tracer) On() bool { return t != nil }

// Clock returns the tracer's time base ("" when disabled).
func (t *Tracer) Clock() Clock {
	if t == nil {
		return ""
	}
	return t.clock
}

// Lane returns the track named (process, thread), creating it on first
// use. Tracks with the same process name share a pid group in the
// viewer; the thread name labels the individual lane. Returns nil when
// the tracer is disabled — all Track methods accept a nil receiver.
func (t *Tracer) Lane(process, thread string) *Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := laneKey{process, thread}
	if tk, ok := t.lanes[key]; ok {
		return tk
	}
	pid, ok := t.pids[process]
	if !ok {
		pid = len(t.pids)
		t.pids[process] = pid
	}
	tk := &Track{
		tr:      t,
		process: process,
		thread:  thread,
		pid:     pid,
		tid:     len(t.tracks),
	}
	t.tracks = append(t.tracks, tk)
	t.lanes[key] = tk
	return tk
}

// Now returns the global virtual-clock position in seconds.
func (t *Tracer) Now() float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.vnow
}

// Advance moves the global virtual clock forward by dt seconds and
// returns the new position. The simulator calls it once per round with
// the round's critical-path total.
func (t *Tracer) Advance(dt float64) float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.vnow += dt
	return t.vnow
}

// Since returns seconds elapsed on the wall clock since the tracer's
// epoch (the ts value a wall span starting now would get).
func (t *Tracer) Since(at time.Time) float64 {
	if t == nil {
		return 0
	}
	return at.Sub(t.epoch).Seconds()
}

// Track is one horizontal lane in the trace. Span emission is owned by
// a single goroutine; all methods are nil-receiver-safe no-ops.
type Track struct {
	tr      *Tracer
	process string
	thread  string
	pid     int
	tid     int
	cursor  float64 // virtual-clock position, seconds
	events  []event
	stack   []openSpan
}

type openSpan struct {
	name  string
	cat   string
	start float64
}

type event struct {
	name string
	cat  string
	ph   byte    // 'X' complete, 'i' instant
	ts   float64 // seconds since epoch (wall) or virtual zero
	dur  float64 // 'X' only
	note string  // optional args.note
}

// On reports whether the track records anything.
func (k *Track) On() bool { return k != nil }

// Seek positions the track's virtual cursor at sec.
func (k *Track) Seek(sec float64) {
	if k == nil {
		return
	}
	k.cursor = sec
}

// Cursor returns the track's virtual cursor (0 when disabled).
func (k *Track) Cursor() float64 {
	if k == nil {
		return 0
	}
	return k.cursor
}

// Span records a complete span of dur seconds at the cursor and
// advances the cursor past it — the shape of sequential virtual-time
// phases (compute, uplink, downlink, …) accruing on a lane.
func (k *Track) Span(name, cat string, dur float64) {
	if k == nil {
		return
	}
	k.events = append(k.events, event{name: name, cat: cat, ph: 'X', ts: k.cursor, dur: dur})
	k.cursor += dur
}

// SpanAt records a complete span at an explicit position without
// touching the cursor.
func (k *Track) SpanAt(name, cat string, start, dur float64) {
	if k == nil {
		return
	}
	k.events = append(k.events, event{name: name, cat: cat, ph: 'X', ts: start, dur: dur})
}

// Begin opens a nested span at the cursor; the matching End closes it
// at the then-current cursor. Used for container spans (a client slot
// wrapping its phases, a round wrapping its groups).
func (k *Track) Begin(name, cat string) {
	if k == nil {
		return
	}
	k.stack = append(k.stack, openSpan{name: name, cat: cat, start: k.cursor})
}

// End closes the innermost Begin. Unbalanced Ends are ignored.
func (k *Track) End() {
	if k == nil || len(k.stack) == 0 {
		return
	}
	sp := k.stack[len(k.stack)-1]
	k.stack = k.stack[:len(k.stack)-1]
	k.events = append(k.events, event{name: sp.name, cat: sp.cat, ph: 'X', ts: sp.start, dur: k.cursor - sp.start})
}

// Instant records a zero-duration marker at the cursor with an optional
// note rendered into the event args.
func (k *Track) Instant(name, cat, note string) {
	if k == nil {
		return
	}
	k.events = append(k.events, event{name: name, cat: cat, ph: 'i', ts: k.cursor, note: note})
}

// WallSpan is an open wall-clock span returned by BeginWall. The zero
// value (from a nil track) is a safe no-op.
type WallSpan struct {
	k     *Track
	name  string
	cat   string
	start time.Time
}

// BeginWall opens a wall-clock span starting now. Close it with End.
func (k *Track) BeginWall(name, cat string) WallSpan {
	if k == nil {
		return WallSpan{}
	}
	return WallSpan{k: k, name: name, cat: cat, start: time.Now()}
}

// End closes the wall-clock span at the current wall time.
func (s WallSpan) End() {
	if s.k == nil {
		return
	}
	s.k.WallSpanAt(s.name, s.cat, s.start, time.Since(s.start))
}

// EndNote closes the span and attaches a note to its args.
func (s WallSpan) EndNote(note string) {
	if s.k == nil {
		return
	}
	d := time.Since(s.start)
	k := s.k
	k.events = append(k.events, event{
		name: s.name, cat: s.cat, ph: 'X',
		ts: k.tr.Since(s.start), dur: d.Seconds(), note: note,
	})
}

// WallSpanAt records a completed wall-clock span that started at start
// and lasted d.
func (k *Track) WallSpanAt(name, cat string, start time.Time, d time.Duration) {
	if k == nil {
		return
	}
	k.events = append(k.events, event{name: name, cat: cat, ph: 'X', ts: k.tr.Since(start), dur: d.Seconds()})
}

// WallInstant records a zero-duration wall-clock marker at the current
// time with an optional note.
func (k *Track) WallInstant(name, cat, note string) {
	if k == nil {
		return
	}
	k.events = append(k.events, event{name: name, cat: cat, ph: 'i', ts: k.tr.Since(time.Now()), note: note})
}

// Labelf formats a span name — a convenience that keeps fmt out of call
// sites' disabled paths: it returns "" on a nil track, and callers pair
// it with On() so the format only runs when tracing is live.
func (k *Track) Labelf(format string, args ...any) string {
	if k == nil {
		return ""
	}
	return fmt.Sprintf(format, args...)
}
