package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderRing(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		r.Notef("note %d", i)
	}
	got := r.Entries()
	if len(got) != 4 {
		t.Fatalf("len(Entries) = %d, want 4", len(got))
	}
	for i, e := range got {
		want := "note " + string(rune('6'+i))
		if e.Text != want {
			t.Fatalf("entry %d = %q, want %q", i, e.Text, want)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "6 earlier entries overwritten") {
		t.Fatalf("dump missing overwrite banner:\n%s", out)
	}
	if !strings.Contains(out, "note 9") || strings.Contains(out, "note 5") {
		t.Fatalf("dump has wrong window:\n%s", out)
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var r *FlightRecorder
	r.Notef("x %d", 1) // no-op; the variadic slice may itself allocate
	allocs := testing.AllocsPerRun(100, func() {
		r.Note("x")
		if r.Entries() != nil {
			t.Fatal("nil recorder returned entries")
		}
		if r.Total() != 0 {
			t.Fatal("nil recorder has total")
		}
		if _, err := r.WriteTo(nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated %.1f per run, want 0", allocs)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Notef("g%d n%d", g, i)
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("Total = %d, want 800", r.Total())
	}
	if len(r.Entries()) != 64 {
		t.Fatalf("retained %d, want 64", len(r.Entries()))
	}
}
