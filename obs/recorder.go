package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// FlightRecorder is a bounded in-memory ring of timestamped notes —
// cheap enough to leave on in production, dumped only when something
// goes wrong (a straggler deadline fires, a round errors out) so the
// events leading up to the failure are on hand. All methods are safe
// for concurrent use and nil-receiver-safe.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []FlightEntry
	next  int
	total uint64
}

// FlightEntry is one recorded note.
type FlightEntry struct {
	Wall time.Time
	Text string
}

// NewFlightRecorder returns a recorder keeping the most recent n notes
// (n <= 0 picks a default of 256).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = 256
	}
	return &FlightRecorder{buf: make([]FlightEntry, 0, n)}
}

// Note records text with the current wall time.
func (r *FlightRecorder) Note(text string) {
	if r == nil {
		return
	}
	e := FlightEntry{Wall: time.Now(), Text: text}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// Notef records a formatted note. The format runs only when the
// recorder is non-nil, so disabled call sites pay a single branch.
func (r *FlightRecorder) Notef(format string, args ...any) {
	if r == nil {
		return
	}
	r.Note(fmt.Sprintf(format, args...))
}

// Entries returns the retained notes, oldest first.
func (r *FlightRecorder) Entries() []FlightEntry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FlightEntry, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Total returns how many notes were ever recorded (including those the
// ring has since overwritten).
func (r *FlightRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// WriteTo dumps the retained notes, oldest first, one per line with
// wall timestamps — the forensic record attached to a failure report.
func (r *FlightRecorder) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	entries := r.Entries()
	var total int64
	dropped := r.Total() - uint64(len(entries))
	if dropped > 0 {
		n, err := fmt.Fprintf(w, "flight recorder: %d earlier entries overwritten\n", dropped)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	for _, e := range entries {
		n, err := fmt.Fprintf(w, "%s %s\n", e.Wall.Format("15:04:05.000"), e.Text)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
