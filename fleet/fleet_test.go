package fleet_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gsfl/fleet"
	"gsfl/internal/experiment"
	"gsfl/internal/transport"
	"gsfl/sweep"
)

const (
	workerEnvAddr = "GSFL_FLEET_TEST_WORKER"
	workerEnvName = "GSFL_FLEET_TEST_NAME"
)

// TestMain doubles as the worker entry point for the multi-process
// tests: when workerEnvAddr names a coordinator, the re-exec'd test
// binary runs a fleet worker to completion instead of the test suite.
func TestMain(m *testing.M) {
	if addr := os.Getenv(workerEnvAddr); addr != "" {
		err := fleet.RunWorker(context.Background(), fleet.WorkerConfig{
			Addr: addr,
			Name: os.Getenv(workerEnvName),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleet test worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// testGrid is a small 2x2 grid over the CI spec: 4 jobs, 3 rounds each.
func testGrid() sweep.Grid {
	return sweep.Grid{
		Name: "t", Base: experiment.TestSpec(), Rounds: 3, EvalEvery: 1,
		Axes: sweep.Axes{
			Groups:  []int{1, 2},
			Schemes: []string{"gsfl", "sl"},
		},
	}
}

func jobsOf(t *testing.T, g sweep.Grid) []sweep.Job {
	t.Helper()
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// referenceTree runs the grid through the in-process Scheduler at
// Jobs=1 — the determinism contract's ground truth — and returns the
// resulting store as path->content.
func referenceTree(t *testing.T, jobs []sweep.Job) map[string]string {
	t.Helper()
	dir := t.TempDir()
	store, err := sweep.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	sched := &sweep.Scheduler{Jobs: 1, CheckpointEvery: 1}
	if _, err := sched.Run(context.Background(), jobs, store); err != nil {
		t.Fatal(err)
	}
	return readTree(t, dir)
}

// readTree returns path->content for every file under dir.
func readTree(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		buf, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = string(buf)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func requireSameTree(t *testing.T, want, got map[string]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("store file counts differ: got %d, want %d (got %v)", len(got), len(want), keys(got))
	}
	for path, body := range want {
		if got[path] != body {
			t.Fatalf("store file %s differs from the single-process reference", path)
		}
	}
}

func keys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// workerOK filters the expected shutdown paths of an in-process worker:
// a drained worker returns nil, a cancelled one its context error.
func workerOK(err error) bool {
	return err == nil || errors.Is(err, context.Canceled)
}

// TestFleetByteIdenticalToSingleProcess is the distributed half of the
// determinism contract: a grid swept by a coordinator and two
// in-process workers leaves a store byte-identical to a Jobs=1
// single-process run, and Wait fans results out to the caller's job
// order just like Scheduler.Run.
func TestFleetByteIdenticalToSingleProcess(t *testing.T) {
	jobs := jobsOf(t, testGrid())
	want := referenceTree(t, jobs)

	dir := t.TempDir()
	store, err := sweep.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	c, err := fleet.Serve("127.0.0.1:0", jobs, store, fleet.Config{CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fleet.RunWorker(ctx, fleet.WorkerConfig{
				Addr: c.Addr().String(), Name: fmt.Sprintf("w%d", i),
			})
		}(i)
	}

	wctx, wcancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer wcancel()
	results, err := c.Wait(wctx)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	wg.Wait()
	for i, werr := range errs {
		if !workerOK(werr) {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}

	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for i, res := range results {
		if res.Job.ID != jobs[i].ID {
			t.Fatalf("result %d is job %s, want %s", i, res.Job.ID, jobs[i].ID)
		}
	}
	requireSameTree(t, want, readTree(t, dir))
}

func workerCmd(addr, name string) *exec.Cmd {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), workerEnvAddr+"="+addr, workerEnvName+"="+name)
	cmd.Stderr = os.Stderr
	return cmd
}

// TestFleetKillAndRejoinByteIdentical is the acceptance test: a worker
// process is SIGKILLed mid-job (deterministically — coordinator events
// fire before the ack frame, so the kill lands while the worker blocks
// on its first checkpoint upload), a replacement process joins, resumes
// the orphaned job from its uploaded checkpoint, and the final store is
// byte-identical to an uninterrupted single-process run.
func TestFleetKillAndRejoinByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	jobs := jobsOf(t, testGrid())
	want := referenceTree(t, jobs)

	dir := t.TempDir()
	store, err := sweep.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	var (
		mu       sync.Mutex
		victim   *os.Process
		killOnce sync.Once
		killed   = make(chan struct{})
		handoffs int
	)
	observer := fleet.ObserverFunc(func(e fleet.Event) {
		switch e.Kind {
		case fleet.JobProgressed:
			// First checkpoint persisted: kill its worker before the ack
			// goes out. The worker dies mid-job, every time.
			killOnce.Do(func() {
				mu.Lock()
				p := victim
				mu.Unlock()
				if p != nil {
					p.Kill()
				}
				close(killed)
			})
		case fleet.JobLeased:
			if e.Round > 0 {
				mu.Lock()
				handoffs++
				mu.Unlock()
			}
		}
	})

	c, err := fleet.Serve("127.0.0.1:0", jobs, store, fleet.Config{
		LeaseTTL:        10 * time.Second,
		CheckpointEvery: 1,
		Observers:       []fleet.Observer{observer},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	w1 := workerCmd(c.Addr().String(), "victim")
	if err := w1.Start(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	victim = w1.Process
	mu.Unlock()

	select {
	case <-killed:
	case <-time.After(2 * time.Minute):
		t.Fatal("no checkpoint upload arrived; worker never progressed")
	}
	_ = w1.Wait() // reap; a SIGKILLed process reports an error by design

	w2 := workerCmd(c.Addr().String(), "rejoin")
	if err := w2.Start(); err != nil {
		t.Fatal(err)
	}

	wctx, wcancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer wcancel()
	results, err := c.Wait(wctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Wait(); err != nil {
		t.Fatalf("rejoined worker exited abnormally: %v", err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	mu.Lock()
	resumed := handoffs
	mu.Unlock()
	if resumed == 0 {
		t.Fatal("no lease carried a checkpoint handoff — the killed job was not resumed mid-flight")
	}
	requireSameTree(t, want, readTree(t, dir))
}

// TestFleetLeaseExpiryReassigns covers the silent-failure path the
// kill test cannot: a worker that holds its connection open but stops
// heartbeating (a hung process, a one-way partition). Its lease must
// expire, the job reassign, and every later message from the zombie be
// fenced with a failed ack.
func TestFleetLeaseExpiryReassigns(t *testing.T) {
	jobs := jobsOf(t, testGrid())
	dir := t.TempDir()
	store, err := sweep.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	reassigned := make(chan struct{}, len(jobs))
	observer := fleet.ObserverFunc(func(e fleet.Event) {
		if e.Kind == fleet.JobReassigned {
			select {
			case reassigned <- struct{}{}:
			default:
			}
		}
	})
	c, err := fleet.Serve("127.0.0.1:0", jobs, store, fleet.Config{
		LeaseTTL:        250 * time.Millisecond,
		CheckpointEvery: 1,
		Observers:       []fleet.Observer{observer},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The zombie: takes a lease, then goes silent without disconnecting.
	conn, err := net.Dial("tcp", c.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fc := transport.NewFleetConn(conn, 0)
	if err := fc.WriteHello(transport.FleetHello{Worker: "zombie", PID: 1}); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := fc.ReadFrame()
	if err != nil || kind != transport.FrameFleetHello {
		t.Fatalf("welcome: kind %d err %v", kind, err)
	}
	if _, err := transport.DecodeFleetWelcome(payload); err != nil {
		t.Fatal(err)
	}
	if err := fc.WriteLeaseRequest(); err != nil {
		t.Fatal(err)
	}
	kind, payload, err = fc.ReadFrame()
	if err != nil || kind != transport.FrameFleetLease {
		t.Fatalf("lease reply: kind %d err %v", kind, err)
	}
	lease, err := transport.DecodeFleetLease(payload)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Status != transport.LeaseGrant {
		t.Fatalf("lease status %d, want grant", lease.Status)
	}

	select {
	case <-reassigned:
	case <-time.After(10 * time.Second):
		t.Fatal("silent worker's lease never expired")
	}

	// The fence: the zombie's heartbeat for its revoked lease must be
	// answered, but with OK=false.
	if err := fc.WriteHeartbeat(transport.FleetHeartbeat{JobID: lease.JobID, Round: 1}); err != nil {
		t.Fatal(err)
	}
	kind, payload, err = fc.ReadFrame()
	if err != nil || kind != transport.FrameFleetHeartbeat {
		t.Fatalf("heartbeat ack: kind %d err %v", kind, err)
	}
	ack, err := transport.DecodeFleetAck(payload)
	if err != nil {
		t.Fatal(err)
	}
	if ack.OK {
		t.Fatal("heartbeat on an expired lease renewed it")
	}
	conn.Close()

	// A live worker finishes the sweep, the zombie's job included.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- fleet.RunWorker(ctx, fleet.WorkerConfig{Addr: c.Addr().String(), Name: "live"})
	}()
	wctx, wcancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer wcancel()
	results, err := c.Wait(wctx)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if werr := <-done; !workerOK(werr) {
		t.Fatalf("live worker: %v", werr)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
}

// TestFleetResumesCompletedStore: serving a grid over a store that
// already holds every result completes immediately, without workers.
func TestFleetResumesCompletedStore(t *testing.T) {
	jobs := jobsOf(t, testGrid())
	dir := t.TempDir()
	store, err := sweep.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&sweep.Scheduler{Jobs: 2}).Run(context.Background(), jobs, store); err != nil {
		t.Fatal(err)
	}
	store.Close()

	store2, err := sweep.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	c, err := fleet.Serve("127.0.0.1:0", jobs, store2, fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	wctx, wcancel := context.WithTimeout(context.Background(), time.Minute)
	defer wcancel()
	results, err := c.Wait(wctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
}
