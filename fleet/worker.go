package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gsfl/internal/transport"
	"gsfl/sweep"
)

// WorkerConfig parameterizes RunWorker.
type WorkerConfig struct {
	// Addr is the coordinator's address.
	Addr string
	// Name is the worker's display name (default "worker-<pid>"). Names
	// label events, metrics lanes, and logs; the coordinator fences
	// leases by connection, not by name.
	Name string
	// ScratchDir holds in-flight job checkpoints (default: a fresh
	// temp directory, removed on exit).
	ScratchDir string
	// MaxFrame caps a single frame's payload (0 = transport default).
	MaxFrame int
	// DialRetry is the reconnect backoff after a lost coordinator
	// connection (default 500ms).
	DialRetry time.Duration
	// DialAttempts bounds consecutive failed dials before giving up
	// (default 20).
	DialAttempts int
	// Logf, when non-nil, receives one line per lifecycle step.
	Logf func(format string, args ...any)
}

// errDrain reports the coordinator declared the sweep complete.
var errDrain = errors.New("fleet: drained")

// errLeaseLost reports the coordinator fenced this worker off a job.
var errLeaseLost = errors.New("fleet: lease lost")

// RunWorker runs the pull-based worker loop against a coordinator:
// request a lease, execute the job (resuming from the handoff
// checkpoint when one rides along), stream checkpoints back, report
// the result, repeat — until the coordinator drains it or ctx ends.
// A lost connection reconnects with backoff; a lost lease abandons the
// job (some other worker owns it now) and asks for the next one.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if cfg.DialRetry <= 0 {
		cfg.DialRetry = 500 * time.Millisecond
	}
	if cfg.DialAttempts <= 0 {
		cfg.DialAttempts = 20
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	scratch := cfg.ScratchDir
	if scratch == "" {
		dir, err := os.MkdirTemp("", "gsfl-fleet-*")
		if err != nil {
			return fmt.Errorf("fleet: creating scratch dir: %w", err)
		}
		defer os.RemoveAll(dir)
		scratch = dir
	}

	fails := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", cfg.Addr)
		if err != nil {
			fails++
			if fails >= cfg.DialAttempts {
				return fmt.Errorf("fleet: dialing coordinator %s: %w", cfg.Addr, err)
			}
			logf("dial %s failed (%v), retrying", cfg.Addr, err)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(cfg.DialRetry):
			}
			continue
		}
		fails = 0
		err = workerSession(ctx, conn, cfg, scratch, logf)
		conn.Close()
		switch {
		case errors.Is(err, errDrain):
			logf("drained: sweep complete")
			return nil
		case ctx.Err() != nil:
			return ctx.Err()
		default:
			// Connection-level failure: reconnect and carry on. Any job in
			// flight was abandoned; its lease will expire and reassign.
			logf("session ended (%v), reconnecting", err)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(cfg.DialRetry):
			}
		}
	}
}

// workerConn serializes request/response pairs on one coordinator
// connection: the training goroutine's checkpoint uploads and the
// heartbeat goroutine must not interleave their frames.
type workerConn struct {
	mu sync.Mutex
	fc *transport.FleetConn
}

// roundTripAck writes one frame and reads the coordinator's ack.
func (w *workerConn) roundTripAck(write func(fc *transport.FleetConn) error) (transport.FleetAck, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := write(w.fc); err != nil {
		return transport.FleetAck{}, err
	}
	kind, payload, err := w.fc.ReadFrame()
	if err != nil {
		return transport.FleetAck{}, err
	}
	if kind != transport.FrameFleetHeartbeat {
		return transport.FleetAck{}, fmt.Errorf("fleet: expected ack, got frame kind %d", kind)
	}
	return transport.DecodeFleetAck(payload)
}

// workerSession runs one connection: handshake, then the lease loop.
func workerSession(ctx context.Context, conn net.Conn, cfg WorkerConfig, scratch string, logf func(string, ...any)) error {
	wc := &workerConn{fc: transport.NewFleetConn(conn, cfg.MaxFrame)}
	if err := wc.fc.WriteHello(transport.FleetHello{Worker: cfg.Name, PID: uint64(os.Getpid())}); err != nil {
		return err
	}
	kind, payload, err := wc.fc.ReadFrame()
	if err != nil {
		return err
	}
	if kind != transport.FrameFleetHello {
		return fmt.Errorf("fleet: expected welcome, got frame kind %d", kind)
	}
	welcome, err := transport.DecodeFleetWelcome(payload)
	if err != nil {
		return err
	}
	logf("joined %s: %d jobs, grid %016x, lease %dms, checkpoint every %d rounds",
		cfg.Addr, welcome.Jobs, welcome.Fingerprint, welcome.LeaseMillis, welcome.CheckpointEvery)

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		wc.mu.Lock()
		err := wc.fc.WriteLeaseRequest()
		var lease transport.FleetLease
		if err == nil {
			var kind byte
			var payload []byte
			if kind, payload, err = wc.fc.ReadFrame(); err == nil {
				if kind != transport.FrameFleetLease {
					err = fmt.Errorf("fleet: expected lease reply, got frame kind %d", kind)
				} else {
					lease, err = transport.DecodeFleetLease(payload)
				}
			}
		}
		wc.mu.Unlock()
		if err != nil {
			return err
		}
		switch lease.Status {
		case transport.LeaseDrain:
			return errDrain
		case transport.LeaseWait:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Duration(lease.RetryMillis) * time.Millisecond):
			}
		case transport.LeaseGrant:
			if err := runLeasedJob(ctx, wc, welcome, lease, scratch, logf); err != nil {
				return err
			}
		default:
			return fmt.Errorf("fleet: lease reply with status %d", lease.Status)
		}
	}
}

// runLeasedJob executes one granted job end to end. Connection-level
// errors propagate (the session reconnects); a lost lease or a
// coordinator-reported rejection returns nil — the worker just moves
// on to its next lease request.
func runLeasedJob(ctx context.Context, wc *workerConn, welcome transport.FleetWelcome, lease transport.FleetLease, scratch string, logf func(string, ...any)) error {
	j, err := sweep.UnmarshalJobWire(lease.Job)
	if err != nil {
		// A job that fails integrity checks must not execute; report it
		// so the coordinator aborts loudly instead of spinning the grant.
		logf("rejecting job %s: %v", lease.JobID, err)
		return sendResult(wc, transport.FleetResult{JobID: lease.JobID, Failed: true, Body: []byte(err.Error())})
	}
	var handoff *sweep.LeaseCheckpoint
	if len(lease.Ckpt) > 0 {
		var p sweep.Progress
		if json.Unmarshal(lease.Progress, &p) == nil {
			handoff = &sweep.LeaseCheckpoint{Progress: p, Ckpt: lease.Ckpt}
		}
	}

	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		round   atomic.Int64 // latest completed round, for heartbeats
		lost    atomic.Bool  // coordinator fenced us off the job
		connErr atomic.Value // first connection-level error
		hbDone  = make(chan struct{})
		hbStop  = make(chan struct{})
	)
	failConn := func(err error) {
		connErr.CompareAndSwap(nil, err)
		cancel()
	}

	// Heartbeats keep the lease alive between checkpoint uploads. An
	// ack with OK=false means the lease is gone: abandon the job.
	ttl := time.Duration(welcome.LeaseMillis) * time.Millisecond
	go func() {
		defer close(hbDone)
		tick := time.NewTicker(ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-jctx.Done():
				return
			case <-tick.C:
				ack, err := wc.roundTripAck(func(fc *transport.FleetConn) error {
					return fc.WriteHeartbeat(transport.FleetHeartbeat{JobID: j.ID, Round: int(round.Load())})
				})
				if err != nil {
					failConn(err)
					return
				}
				if !ack.OK {
					lost.Store(true)
					cancel()
					return
				}
			}
		}
	}()

	if handoff != nil {
		logf("leased %s (resume after round %d)", j.Name, handoff.Progress.Round)
	} else {
		logf("leased %s", j.Name)
	}
	start := time.Now()
	res, runErr := sweep.RunLeased(jctx, j, scratch, welcome.CheckpointEvery, handoff, sweep.LeaseCallbacks{
		OnRound: func(r, rounds int, hostSeconds float64) { round.Store(int64(r)) },
		OnCheckpoint: func(p sweep.Progress, ckpt []byte) error {
			buf, err := json.Marshal(p)
			if err != nil {
				return err
			}
			ack, err := wc.roundTripAck(func(fc *transport.FleetConn) error {
				return fc.WriteProgress(transport.FleetProgress{
					JobID: j.ID, Round: p.Round, HostSeconds: time.Since(start).Seconds(),
					Progress: buf, Ckpt: ckpt,
				})
			})
			if err != nil {
				failConn(err)
				return err
			}
			if !ack.OK {
				lost.Store(true)
				return errLeaseLost
			}
			return nil
		},
	})
	// Quiesce the heartbeat goroutine before touching the connection
	// again: its in-flight round trip must finish first.
	close(hbStop)
	cancel()
	<-hbDone

	if err, ok := connErr.Load().(error); ok && err != nil {
		return err // reconnect; the job reassigns via lease expiry
	}
	if lost.Load() {
		logf("lease lost on %s after round %d, abandoning", j.Name, round.Load())
		return nil
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if runErr != nil {
		logf("job %s failed: %v", j.Name, runErr)
		return sendResult(wc, transport.FleetResult{
			JobID: j.ID, Failed: true,
			HostSeconds: time.Since(start).Seconds(),
			Body:        []byte(runErr.Error()),
		})
	}
	body, err := json.Marshal(sweep.PartsOf(res))
	if err != nil {
		return sendResult(wc, transport.FleetResult{JobID: j.ID, Failed: true, Body: []byte(err.Error())})
	}
	logf("done %s in %.2fs", j.Name, time.Since(start).Seconds())
	return sendResult(wc, transport.FleetResult{
		JobID: j.ID, HostSeconds: time.Since(start).Seconds(), Body: body,
	})
}

// sendResult ships a result and waits for the ack. OK=false (a fenced
// zombie's rejected result) is not an error — the job belongs to
// someone else now.
func sendResult(wc *workerConn, msg transport.FleetResult) error {
	_, err := wc.roundTripAck(func(fc *transport.FleetConn) error { return fc.WriteResult(msg) })
	return err
}
