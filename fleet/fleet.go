// Package fleet is the distributed control plane of the sweep engine:
// a coordinator that owns a sweep.Store and leases grid jobs to
// pull-based workers over the transport layer's length-prefixed binary
// framing (internal/transport's fleet frames).
//
// The design keeps the sweep engine's determinism contract (gsfl/sweep)
// across process and machine boundaries:
//
//   - Jobs are content-hash addressed. A worker validates every job it
//     receives by rehashing; the coordinator records results keyed by
//     the same IDs, so overlapping grids and rejoining workers
//     deduplicate exactly like the in-process Scheduler.
//
//   - Every job is bit-identical for any worker count (the parallel
//     engine's schedule-independence), and all cross-process payloads
//     round-trip float64 values exactly (binary f64 on the frame
//     layer, Go's shortest-representation encoding in JSON bodies), so
//     the compacted store bytes depend only on the grid — not on how
//     many workers ran, where they ran, or which of them died.
//
//   - Leases expire. A worker that stops heartbeating (crash, kill -9,
//     partition) has its job reassigned; its uploaded checkpoints let
//     the next worker resume mid-job bit-identically (the same
//     resume-soundness rule as the Scheduler: checkpoint and progress
//     sidecar must agree, else the job reruns from scratch — never
//     wrong, only slower). A zombie worker's late messages are fenced
//     by a per-grant lease nonce.
//
// Protocol (strictly worker-initiated request/response):
//
//	worker                          coordinator
//	  |---- hello ------------------->|  register
//	  |<--- welcome ------------------|  fingerprint, cadences
//	  |---- lease request ----------->|
//	  |<--- grant / wait / drain -----|  job (+ checkpoint handoff)
//	  |---- progress (ckpt upload) -->|  persist, renew lease
//	  |<--- ack (lease valid?) -------|
//	  |---- heartbeat --------------->|  renew lease
//	  |<--- ack ----------------------|
//	  |---- result ------------------>|  record, mark done
//	  |<--- ack ----------------------|
//
// cmd/gsfl-sweep exposes this as -serve (coordinator) and -worker
// modes; the single-process path is untouched.
package fleet

import (
	"fmt"
	"time"

	"gsfl/sweep"
)

// Defaults for the lease lifecycle.
const (
	// DefaultLeaseTTL is how long a lease survives without a heartbeat,
	// progress, or result from its holder.
	DefaultLeaseTTL = 15 * time.Second
	// DefaultRetry is how long a worker waits to re-request when every
	// remaining job is leased out.
	DefaultRetry = 250 * time.Millisecond
)

// EventKind labels a coordinator progress event.
type EventKind int

const (
	// WorkerJoined fires when a worker completes its hello handshake.
	WorkerJoined EventKind = iota
	// WorkerLeft fires when a worker's connection closes.
	WorkerLeft
	// JobLeased fires when a job is granted to a worker; Round carries
	// the handoff round (0 = fresh start).
	JobLeased
	// JobProgressed fires when a worker's checkpoint upload is persisted.
	JobProgressed
	// JobReassigned fires when a lease expires (or its holder
	// disconnects) and the job returns to the pending pool.
	JobReassigned
	// JobRecorded fires when a job's result lands in the store.
	JobRecorded
	// JobFailed fires when a worker reports a job error (the sweep
	// aborts, mirroring the Scheduler's first-error semantics).
	JobFailed
	// SweepCompleted fires once, after the final result is recorded and
	// the store compacted.
	SweepCompleted
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case WorkerJoined:
		return "worker-joined"
	case WorkerLeft:
		return "worker-left"
	case JobLeased:
		return "leased"
	case JobProgressed:
		return "progressed"
	case JobReassigned:
		return "reassigned"
	case JobRecorded:
		return "recorded"
	case JobFailed:
		return "failed"
	case SweepCompleted:
		return "completed"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one progress report from a running coordinator. Events are
// emitted synchronously inside the message handler, before the ack
// frame is written back — so by the time a worker sees its ack, every
// observer has seen the event. (The kill-and-rejoin tests depend on
// this ordering to land a SIGKILL deterministically mid-job.)
type Event struct {
	Kind   EventKind
	Worker string
	Job    sweep.Job
	// Round is the handoff round (JobLeased) or the round just
	// checkpointed (JobProgressed).
	Round int
	// Done/Total track sweep completion (unique jobs).
	Done, Total int
	// Err is set on JobFailed.
	Err error
}

// Observer receives coordinator events. Calls are serialized under the
// coordinator's lock but may originate from any connection goroutine.
type Observer interface {
	OnEvent(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(e Event) { f(e) }
