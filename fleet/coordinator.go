package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"sync"
	"time"

	"gsfl/internal/metrics"
	"gsfl/internal/transport"
	"gsfl/obs"
	"gsfl/sim"
	"gsfl/sweep"
)

// Config parameterizes a coordinator. The zero value of every optional
// field is usable: defaults fill the cadences, the frame cap, and the
// metrics registry.
type Config struct {
	// LeaseTTL is how long a lease survives without any message from
	// its holder (default DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Retry is the poll interval handed to workers when all remaining
	// jobs are leased (default DefaultRetry).
	Retry time.Duration
	// CheckpointEvery is the mid-job checkpoint cadence, in rounds,
	// every worker must follow (0 disables mid-job handoff; a killed
	// job then restarts from scratch on its next worker).
	CheckpointEvery int
	// MaxFrame caps a single frame's payload (0 = the transport
	// default). Checkpoint uploads carry whole model states.
	MaxFrame int
	// Observers receive coordinator events.
	Observers []Observer
	// Tracer, when non-nil, records one wall-clock track per worker
	// (lane "fleet"/<worker>): a span per leased job plus instants for
	// joins, reassignments, and failures. Nil disables tracing.
	Tracer *obs.Tracer
}

// jobState tracks one unique job through the lease lifecycle.
type jobState struct {
	idx  int
	job  sweep.Job
	done bool

	leased    bool
	worker    string // display name of the leaseholder
	connID    uint64 // fencing: which connection holds the lease
	nonce     uint64 // fencing: which grant the lease belongs to
	deadline  time.Time
	grantedAt time.Time
	round     int // last checkpointed round
}

// Coordinator owns the sweep store and leases jobs to fleet workers.
// Create one with Serve; it accepts connections until Close.
type Coordinator struct {
	cfg      Config
	store    *sweep.Store
	jobs     []sweep.Job // the caller's list, duplicates included
	unique   []sweep.Job
	indexOf  map[string]int
	fp       uint64
	listener net.Listener

	reg           *metrics.Registry
	mWorkers      *metrics.Gauge
	mPending      *metrics.Gauge
	mLeased       *metrics.Gauge
	mDone         *metrics.Gauge
	mGranted      *metrics.Counter
	mReassigned   *metrics.Counter
	mResults      *metrics.Counter
	mStale        *metrics.Counter
	mLeaseSeconds *metrics.Histogram
	mCkptBytes    *metrics.Histogram

	mu       sync.Mutex
	states   []*jobState
	byID     map[string]*jobState
	conns    map[uint64]net.Conn // open worker connections, for Close
	doneN    int
	workers  int
	nextConn uint64
	nonces   uint64
	firstErr error
	finished bool // results recorded + store compacted (or sweep failed)
	doneCh   chan struct{}
	closed   bool

	wg sync.WaitGroup
}

// Serve starts a coordinator listening on addr ("host:port"; port 0
// picks a free one — see Addr). The store must be open and exclusive to
// this process; jobs are deduplicated by content ID exactly like the
// in-process Scheduler, and already-recorded jobs count as done
// immediately.
func Serve(addr string, jobs []sweep.Job, store *sweep.Store, cfg Config) (*Coordinator, error) {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.Retry <= 0 {
		cfg.Retry = DefaultRetry
	}
	c := &Coordinator{
		cfg:     cfg,
		store:   store,
		jobs:    jobs,
		indexOf: map[string]int{},
		byID:    map[string]*jobState{},
		conns:   map[uint64]net.Conn{},
		doneCh:  make(chan struct{}),
		reg:     metrics.NewRegistry(),
	}
	for _, j := range jobs {
		if j.ID == "" {
			return nil, fmt.Errorf("fleet: job %q has no ID (expand jobs via Grid.Jobs)", j.Name)
		}
		if _, ok := c.indexOf[j.ID]; ok {
			continue
		}
		st := &jobState{idx: len(c.unique), job: j}
		c.indexOf[j.ID] = st.idx
		c.unique = append(c.unique, j)
		c.states = append(c.states, st)
		c.byID[j.ID] = st
	}
	// Resume: anything already in the manifest is done.
	for _, st := range c.states {
		if _, ok := store.Lookup(st.job.ID); ok {
			st.done = true
			c.doneN++
		}
	}
	h := fnv.New64a()
	for _, j := range c.unique {
		_, _ = h.Write([]byte(j.ID))
	}
	c.fp = h.Sum64()

	c.mWorkers = c.reg.Gauge("gsfl_fleet_workers", "Connected fleet workers.")
	c.mPending = c.reg.Gauge("gsfl_fleet_jobs_pending", "Unique jobs not yet leased or done.")
	c.mLeased = c.reg.Gauge("gsfl_fleet_jobs_leased", "Unique jobs currently leased to workers.")
	c.mDone = c.reg.Gauge("gsfl_fleet_jobs_done", "Unique jobs recorded in the store.")
	c.mGranted = c.reg.Counter("gsfl_fleet_leases_granted_total", "Job leases granted to workers.")
	c.mReassigned = c.reg.Counter("gsfl_fleet_leases_reassigned_total", "Leases revoked after expiry or worker disconnect.")
	c.mResults = c.reg.Counter("gsfl_fleet_results_total", "Job results accepted and recorded.")
	c.mStale = c.reg.Counter("gsfl_fleet_stale_messages_total", "Messages fenced off by a stale lease nonce.")
	c.mLeaseSeconds = c.reg.Histogram("gsfl_fleet_lease_seconds", "Wall-clock from lease grant to recorded result.", metrics.DefSecondsBuckets)
	c.mCkptBytes = c.reg.Histogram("gsfl_fleet_checkpoint_bytes", "Checkpoint payload sizes uploaded by workers.", metrics.DefBytesBuckets)
	c.gaugesLocked()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: listen %s: %w", addr, err)
	}
	c.listener = ln
	// A sweep that is already fully recorded needs no workers.
	c.mu.Lock()
	c.maybeFinishLocked()
	c.mu.Unlock()

	c.wg.Add(2)
	go c.acceptLoop()
	go c.reaperLoop()
	return c, nil
}

// Addr returns the coordinator's bound listen address.
func (c *Coordinator) Addr() net.Addr { return c.listener.Addr() }

// MetricsHandler exposes the fleet registry in Prometheus text format.
func (c *Coordinator) MetricsHandler() http.Handler { return c.reg.Handler() }

// Wait blocks until every unique job is recorded and the store
// compacted (returning results fanned out to the caller's job order,
// like Scheduler.Run), the sweep fails, or ctx is cancelled.
func (c *Coordinator) Wait(ctx context.Context) ([]sweep.JobResult, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.doneCh:
	}
	c.mu.Lock()
	err := c.firstErr
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	out := make([]sweep.JobResult, len(c.jobs))
	for i, j := range c.jobs {
		res, ok := c.store.Result(j)
		if !ok {
			return nil, fmt.Errorf("fleet: job %s completed but missing from store", j.Name)
		}
		out[i] = res
	}
	return out, nil
}

// Close stops accepting and tears down every worker connection. Safe
// to call more than once. Connected workers get a short grace period to
// pull their drain reply and disconnect themselves — a worker that
// outlives a completed sweep should exit cleanly, not with a dial
// error — before any stragglers are cut off.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	if c.firstErr == nil && !c.finished {
		c.firstErr = errors.New("fleet: coordinator closed before sweep completed")
	}
	c.finishLocked()
	c.mu.Unlock()
	if already {
		return nil
	}
	err := c.listener.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		c.mu.Lock()
		if c.workers == 0 || time.Now().After(deadline) {
			// Unblock handler goroutines parked in ReadFrame on any
			// remaining connections, or the Wait below never returns.
			for _, conn := range c.conns {
				conn.Close()
			}
			c.mu.Unlock()
			break
		}
		c.mu.Unlock()
		time.Sleep(10 * time.Millisecond)
	}
	c.wg.Wait()
	return err
}

// gaugesLocked refreshes the job gauges from the lease table.
func (c *Coordinator) gaugesLocked() {
	var pending, leased int64
	for _, st := range c.states {
		switch {
		case st.done:
		case st.leased:
			leased++
		default:
			pending++
		}
	}
	c.mPending.Set(pending)
	c.mLeased.Set(leased)
	c.mDone.Set(int64(c.doneN))
}

func (c *Coordinator) emitLocked(e Event) {
	e.Done, e.Total = c.doneN, len(c.unique)
	for _, o := range c.cfg.Observers {
		o.OnEvent(e)
	}
}

// finishLocked closes doneCh exactly once.
func (c *Coordinator) finishLocked() {
	select {
	case <-c.doneCh:
	default:
		close(c.doneCh)
	}
}

// maybeFinishLocked compacts and completes when the last job lands.
func (c *Coordinator) maybeFinishLocked() {
	if c.finished || c.firstErr != nil || c.doneN != len(c.unique) {
		return
	}
	if err := c.store.Compact(c.unique); err != nil {
		c.firstErr = err
	}
	c.finished = true
	c.emitLocked(Event{Kind: SweepCompleted})
	c.finishLocked()
}

func (c *Coordinator) failLocked(err error) {
	if c.firstErr == nil {
		c.firstErr = err
	}
	c.finished = true
	c.finishLocked()
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	var conns sync.WaitGroup
	defer conns.Wait()
	for {
		conn, err := c.listener.Accept()
		if err != nil {
			return // listener closed
		}
		conns.Add(1)
		go func() {
			defer conns.Done()
			c.handle(conn)
		}()
	}
}

// reaperLoop expires leases whose holders went silent.
func (c *Coordinator) reaperLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.LeaseTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.doneCh:
			return
		case now := <-tick.C:
			c.mu.Lock()
			for _, st := range c.states {
				if st.leased && !st.done && now.After(st.deadline) {
					c.releaseLocked(st, "lease expired")
				}
			}
			c.gaugesLocked()
			c.mu.Unlock()
		}
	}
}

// releaseLocked returns a leased job to the pending pool. The nonce
// advance fences every in-flight message from the old holder.
func (c *Coordinator) releaseLocked(st *jobState, why string) {
	if !st.leased {
		return
	}
	st.leased = false
	c.nonces++
	st.nonce = c.nonces // invalidate the old grant
	c.mReassigned.Inc()
	if tk := c.cfg.Tracer.Lane("fleet", st.worker); tk.On() {
		tk.WallInstant("reassign "+st.job.Name, "lease", why)
	}
	c.emitLocked(Event{Kind: JobReassigned, Worker: st.worker, Job: st.job, Round: st.round})
}

// handle runs one worker connection to completion.
func (c *Coordinator) handle(conn net.Conn) {
	defer conn.Close()
	fc := transport.NewFleetConn(conn, c.cfg.MaxFrame)

	// Handshake: the first frame must be a worker hello.
	kind, payload, err := fc.ReadFrame()
	if err != nil || kind != transport.FrameFleetHello {
		return
	}
	hello, err := transport.DecodeFleetHello(payload)
	if err != nil {
		return
	}
	// Worker display names need not be unique; fencing uses connID.
	// Track emission for this worker's obs lane is serialized under
	// c.mu, because the reaper and other connections may also stamp it.
	worker := hello.Worker
	tk := c.cfg.Tracer.Lane("fleet", worker)
	c.mu.Lock()
	c.nextConn++
	connID := c.nextConn
	c.conns[connID] = conn
	c.workers++
	c.mWorkers.Set(int64(c.workers))
	closed := c.closed
	if tk.On() {
		tk.WallInstant("join", "worker", fmt.Sprintf("pid %d", hello.PID))
	}
	c.emitLocked(Event{Kind: WorkerJoined, Worker: worker})
	c.mu.Unlock()
	if closed {
		return
	}

	defer func() {
		c.mu.Lock()
		delete(c.conns, connID)
		c.workers--
		c.mWorkers.Set(int64(c.workers))
		// A dropped connection releases its leases immediately — no need
		// to wait out the TTL.
		for _, st := range c.states {
			if st.leased && !st.done && st.connID == connID {
				c.releaseLocked(st, "worker disconnected")
			}
		}
		c.gaugesLocked()
		c.emitLocked(Event{Kind: WorkerLeft, Worker: worker})
		c.mu.Unlock()
	}()

	if err := fc.WriteWelcome(transport.FleetWelcome{
		Fingerprint:     c.fp,
		Jobs:            len(c.unique),
		LeaseMillis:     int(c.cfg.LeaseTTL / time.Millisecond),
		RetryMillis:     int(c.cfg.Retry / time.Millisecond),
		CheckpointEvery: c.cfg.CheckpointEvery,
	}); err != nil {
		return
	}

	for {
		kind, payload, err := fc.ReadFrame()
		if err != nil {
			return // EOF or broken conn; the deferred release handles leases
		}
		switch kind {
		case transport.FrameFleetLease:
			if _, err := transport.DecodeFleetLease(payload); err != nil {
				return
			}
			if err := c.grantLease(fc, tk, worker, connID); err != nil {
				return
			}
		case transport.FrameFleetProgress:
			msg, err := transport.DecodeFleetProgress(payload)
			if err != nil {
				return
			}
			if err := fc.WriteAck(transport.FleetAck{OK: c.applyProgress(worker, connID, msg)}); err != nil {
				return
			}
		case transport.FrameFleetResult:
			msg, err := transport.DecodeFleetResult(payload)
			if err != nil {
				return
			}
			ok, rerr := c.applyResult(tk, worker, connID, msg)
			if rerr != nil {
				return
			}
			if err := fc.WriteAck(transport.FleetAck{OK: ok}); err != nil {
				return
			}
		case transport.FrameFleetHeartbeat:
			msg, err := transport.DecodeFleetHeartbeat(payload)
			if err != nil {
				return
			}
			if err := fc.WriteAck(transport.FleetAck{OK: c.renewLease(connID, msg.JobID)}); err != nil {
				return
			}
		default:
			return // protocol violation
		}
	}
}

// grantLease answers one lease request: a job grant (with checkpoint
// handoff when a usable one exists), a wait, or a drain.
func (c *Coordinator) grantLease(fc *transport.FleetConn, tk *obs.Track, worker string, connID uint64) error {
	c.mu.Lock()
	if c.finished || c.firstErr != nil || c.closed {
		c.mu.Unlock()
		return fc.WriteLease(transport.FleetLease{Status: transport.LeaseDrain})
	}
	var st *jobState
	for _, s := range c.states {
		if !s.done && !s.leased {
			st = s
			break
		}
	}
	if st == nil {
		c.mu.Unlock()
		return fc.WriteLease(transport.FleetLease{
			Status:      transport.LeaseWait,
			RetryMillis: int(c.cfg.Retry / time.Millisecond),
		})
	}

	// Checkpoint handoff: attach the previous holder's uploaded state
	// when it passes the same soundness check the Scheduler applies
	// (checkpoint and progress sidecar agree on scheme and round).
	j := st.job
	var progJSON, ckpt []byte
	handoffRound := 0
	if c.cfg.CheckpointEvery > 0 && c.store.HasCheckpoint(j) {
		prior, ok := c.store.LoadProgress(j)
		scheme, ckptRound, peekErr := sim.PeekCheckpoint(c.store.CheckpointPath(j))
		if ok && peekErr == nil && scheme == j.Scheme && ckptRound == prior.Round && ckptRound < j.Rounds {
			if data, ok := c.store.ReadCheckpoint(j); ok {
				if buf, err := json.Marshal(prior); err == nil {
					progJSON, ckpt = buf, data
					handoffRound = prior.Round
				}
			}
		}
		if ckpt == nil {
			c.store.DropTransient(j)
		}
	}

	jobJSON, err := sweep.MarshalJobWire(j)
	if err != nil {
		c.failLocked(fmt.Errorf("fleet: encoding job %s: %w", j.Name, err))
		c.mu.Unlock()
		return fc.WriteLease(transport.FleetLease{Status: transport.LeaseDrain})
	}
	st.leased = true
	st.worker = worker
	st.connID = connID
	c.nonces++
	st.nonce = c.nonces
	st.grantedAt = time.Now()
	st.deadline = st.grantedAt.Add(c.cfg.LeaseTTL)
	st.round = handoffRound
	c.mGranted.Inc()
	c.gaugesLocked()
	tk.WallInstant("lease "+j.Name, "lease", fmt.Sprintf("from round %d", handoffRound))
	c.emitLocked(Event{Kind: JobLeased, Worker: worker, Job: j, Round: handoffRound})
	c.mu.Unlock()

	return fc.WriteLease(transport.FleetLease{
		Status:   transport.LeaseGrant,
		JobID:    j.ID,
		Job:      jobJSON,
		Progress: progJSON,
		Ckpt:     ckpt,
	})
}

// leaseOfLocked returns the job state iff connID currently holds its
// lease. Stale holders (expired, reassigned, or already-done jobs) get
// nil — their messages are fenced, not applied.
func (c *Coordinator) leaseOfLocked(connID uint64, jobID string) *jobState {
	st, ok := c.byID[jobID]
	if !ok || st.done || !st.leased || st.connID != connID {
		return nil
	}
	return st
}

// applyProgress persists a checkpoint upload and renews the lease.
// Returns false when the sender no longer holds the lease.
func (c *Coordinator) applyProgress(worker string, connID uint64, msg transport.FleetProgress) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.leaseOfLocked(connID, msg.JobID)
	if st == nil {
		c.mStale.Inc()
		return false
	}
	var p sweep.Progress
	if err := json.Unmarshal(msg.Progress, &p); err != nil || p.Round != msg.Round {
		c.mStale.Inc()
		return false
	}
	// Checkpoint first, then the sidecar — the same write order the
	// Scheduler's resume-soundness rule assumes.
	if err := c.store.WriteCheckpoint(st.job, msg.Ckpt); err != nil {
		return false
	}
	if err := c.store.SaveProgress(st.job, p); err != nil {
		return false
	}
	st.round = msg.Round
	st.deadline = time.Now().Add(c.cfg.LeaseTTL)
	c.mCkptBytes.Observe(float64(len(msg.Ckpt)))
	c.emitLocked(Event{Kind: JobProgressed, Worker: worker, Job: st.job, Round: msg.Round})
	return true
}

// applyResult records a completed job (or aborts the sweep on a worker
// failure). Results are accepted from any current leaseholder; a
// zombie's duplicate result for an already-done job is acked OK —
// results are bit-identical by contract, so the first write stands.
func (c *Coordinator) applyResult(tk *obs.Track, worker string, connID uint64, msg transport.FleetResult) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.byID[msg.JobID]
	if !ok {
		c.mStale.Inc()
		return false, nil
	}
	if st.done {
		return true, nil // duplicate finish from a fenced zombie
	}
	if cur := c.leaseOfLocked(connID, msg.JobID); cur == nil {
		c.mStale.Inc()
		return false, nil
	}
	if msg.Failed {
		err := fmt.Errorf("fleet: job %s failed on %s: %s", st.job.Name, worker, msg.Body)
		c.emitLocked(Event{Kind: JobFailed, Worker: worker, Job: st.job, Err: err})
		c.failLocked(err)
		return true, nil
	}
	var parts sweep.ResultParts
	if err := json.Unmarshal(msg.Body, &parts); err != nil {
		c.failLocked(fmt.Errorf("fleet: decoding result for %s: %w", st.job.Name, err))
		return false, nil
	}
	if err := c.store.Record(sweep.ResultFrom(st.job, parts)); err != nil {
		c.failLocked(err)
		return false, nil
	}
	_ = c.store.RecordTiming(st.job.ID, msg.HostSeconds)
	st.done = true
	st.leased = false
	c.doneN++
	c.mResults.Inc()
	c.mLeaseSeconds.Observe(time.Since(st.grantedAt).Seconds())
	tk.WallSpanAt(st.job.Name, "job", st.grantedAt, time.Since(st.grantedAt))
	c.gaugesLocked()
	c.emitLocked(Event{Kind: JobRecorded, Worker: worker, Job: st.job})
	c.maybeFinishLocked()
	return true, nil
}

// renewLease extends a heartbeating holder's deadline. Returns false
// when the lease is gone (the worker must abandon the job).
func (c *Coordinator) renewLease(connID uint64, jobID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.leaseOfLocked(connID, jobID)
	if st == nil {
		c.mStale.Inc()
		return false
	}
	st.deadline = time.Now().Add(c.cfg.LeaseTTL)
	return true
}
