package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"gsfl/internal/experiment"
	"gsfl/internal/parallel"
	"gsfl/internal/simnet"
	"gsfl/obs"
	"gsfl/sim"
)

// EventKind labels a scheduler progress event.
type EventKind int

const (
	// JobStarted fires when a job begins executing (fresh or resumed).
	JobStarted EventKind = iota
	// JobRound fires after each completed round of a running job.
	JobRound
	// JobDone fires when a job finishes and its result is recorded.
	JobDone
	// JobSkipped fires when the store already holds the job's result.
	JobSkipped
	// JobResumed fires when a job restarts from a sim checkpoint left by
	// a killed sweep; Round carries the round it resumed after.
	JobResumed
	// JobFailed fires when a job returns an error (the sweep aborts).
	JobFailed
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case JobStarted:
		return "started"
	case JobRound:
		return "round"
	case JobDone:
		return "done"
	case JobSkipped:
		return "skipped"
	case JobResumed:
		return "resumed"
	case JobFailed:
		return "failed"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one progress report from a running sweep.
type Event struct {
	Kind EventKind
	// Job is the subject; Index/Total position it in the deduplicated
	// schedule (Index is 0-based).
	Job   Job
	Index int
	Total int
	// Round/Rounds report training progress (JobRound, JobResumed).
	Round  int
	Rounds int
	// HostSeconds is the real wall-clock cost: of the round for
	// JobRound, of the whole job for JobDone.
	HostSeconds float64
	// Err is set on JobFailed.
	Err error
}

// Observer receives Events. Calls are serialized by the scheduler but
// may originate from any job goroutine, in completion order.
type Observer interface {
	OnEvent(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(e Event) { f(e) }

// Scheduler executes a list of Jobs concurrently. The zero value runs
// GOMAXPROCS jobs at a time with no checkpointing; set the fields
// before Run.
type Scheduler struct {
	// Jobs is the number of jobs in flight at once (<= 0 means
	// runtime.GOMAXPROCS(0)).
	Jobs int
	// Workers is the global worker budget shared by all in-flight jobs:
	// Run sets the parallel pool to parallel.Budget(Workers, inflight),
	// so job goroutines plus pool helpers never exceed it (0 means
	// GOMAXPROCS).
	Workers int
	// CheckpointEvery, when positive and a store is present, persists
	// each in-flight job's sim checkpoint (plus the store's progress
	// sidecar) every n rounds, making killed sweeps resumable mid-job.
	CheckpointEvery int
	// Observers receive progress events.
	Observers []Observer
	// Tracer, when non-nil, records one wall-clock track per executed
	// job under the "sweep" process: a span covering the job's run,
	// per-round child spans sized by the rounds' host cost, and resume
	// markers. Skipped jobs leave no track. Nil disables tracing at zero
	// cost.
	Tracer *obs.Tracer
}

// Run executes the jobs and returns their results in input order.
// Duplicate IDs in the input (overlapping grids) are executed once and
// fanned out to every position. With a store, jobs already recorded are
// skipped, jobs with a live checkpoint resume from it, and on success
// the manifest is compacted into job order — so the store's final bytes
// are independent of concurrency, scheduling, and interruptions. The
// first job error (or ctx cancellation) stops the sweep; checkpoints of
// in-flight jobs survive for the next run.
func (s *Scheduler) Run(ctx context.Context, jobs []Job, store *Store) ([]JobResult, error) {
	inflight := s.Jobs
	if inflight < 1 {
		inflight = runtime.GOMAXPROCS(0)
	}

	// Deduplicate by content ID, keeping first-occurrence order.
	var unique []Job
	indexOf := map[string]int{}
	for _, j := range jobs {
		if j.ID == "" {
			return nil, fmt.Errorf("sweep: job %q has no ID (expand jobs via Grid.Jobs)", j.Name)
		}
		if _, ok := indexOf[j.ID]; !ok {
			indexOf[j.ID] = len(unique)
			unique = append(unique, j)
		}
	}
	if inflight > len(unique) {
		inflight = len(unique)
	}
	if inflight > 0 {
		// Split the worker budget across in-flight jobs for the duration
		// of the sweep, restoring the caller's pool afterwards.
		prev := parallel.Workers()
		parallel.SetWorkers(parallel.Budget(s.Workers, inflight))
		defer parallel.SetWorkers(prev)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	emit := func(e Event) {
		mu.Lock()
		for _, obs := range s.Observers {
			obs.OnEvent(e)
		}
		mu.Unlock()
	}

	results := make([]JobResult, len(unique))
	queue := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < inflight; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range queue {
				if ctx.Err() != nil {
					continue // drain
				}
				res, err := s.runOne(ctx, unique[idx], idx, len(unique), store, emit)
				if err != nil {
					if ctx.Err() == nil {
						emit(Event{Kind: JobFailed, Job: unique[idx], Index: idx, Total: len(unique), Err: err})
					}
					fail(err)
					continue
				}
				results[idx] = res
			}
		}()
	}
	for i := range unique {
		queue <- i
	}
	close(queue)
	wg.Wait()

	if firstErr == nil {
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if store != nil {
		if err := store.Compact(unique); err != nil {
			return nil, err
		}
	}
	out := make([]JobResult, len(jobs))
	for i, j := range jobs {
		out[i] = results[indexOf[j.ID]]
	}
	return out, nil
}

// runOne executes (or skips, or resumes) a single unique job.
func (s *Scheduler) runOne(ctx context.Context, j Job, idx, total int, store *Store, emit func(Event)) (JobResult, error) {
	if store != nil {
		if res, ok := store.Result(j); ok {
			// The timings sidecar (when the recording run left one) carries
			// the job's real host cost, so a resumed sweep's ETA starts from
			// the completed work instead of zero.
			hostSec, _ := store.HostSecondsOf(j.ID)
			emit(Event{Kind: JobSkipped, Job: j, Index: idx, Total: total, Rounds: j.Rounds, HostSeconds: hostSec})
			return res, nil
		}
	}

	// The job's wall-clock trace lane. Each unique job executes exactly
	// once, in one worker goroutine, so the track has a single owner; the
	// deferred End records the job span even when the job fails — the
	// attempt's duration is exactly what a post-mortem wants.
	tk := s.Tracer.Lane("sweep", j.Name)
	jobSpan := tk.BeginWall(j.Name, "job")
	defer jobSpan.End()

	// The event-forwarding (and, with checkpointing, progress-writing)
	// observer. prior seeds the cumulative accumulators on resume.
	var opts []sim.RunOption
	checkpointing := store != nil && s.CheckpointEvery > 0
	makeObserver := func(prior Progress) sim.RunOption {
		sum := simnet.Ledger{}
		for _, c := range simnet.Components() {
			if v, ok := prior.Components[c.String()]; ok {
				sum.Add(c, v)
			}
		}
		totalSec := prior.TotalSeconds
		return sim.WithObserver(sim.ObserverFunc(func(e sim.RoundEvent) {
			sum.Merge(e.Ledger)
			totalSec += e.RoundSeconds
			if checkpointing && e.CheckpointPath != "" {
				comp := map[string]float64{}
				for _, c := range simnet.Components() {
					if v := sum.Get(c); v != 0 {
						comp[c.String()] = v
					}
				}
				// A failed progress write only costs resume work for this
				// job; the run itself is unaffected.
				_ = store.SaveProgress(j, Progress{Round: e.Round, Components: comp, TotalSeconds: totalSec})
			}
			if tk.On() {
				d := time.Duration(e.HostSeconds * float64(time.Second))
				tk.WallSpanAt(tk.Labelf("round %d", e.Round), "round", time.Now().Add(-d), d)
			}
			emit(Event{
				Kind: JobRound, Job: j, Index: idx, Total: total,
				Round: e.Round, Rounds: e.Rounds, HostSeconds: e.HostSeconds,
			})
		}))
	}

	start := time.Now()
	var (
		res JobResult
		err error
	)
	resumed := false
	if checkpointing {
		opts = append(opts,
			sim.WithCheckpointPath(store.CheckpointPath(j)),
			sim.WithCheckpointEvery(s.CheckpointEvery),
		)
		if store.HasCheckpoint(j) {
			// A resume is only sound when the checkpoint and the progress
			// sidecar describe the same round boundary — a crash between
			// their writes leaves the sidecar one checkpoint behind, and
			// seeding from it would corrupt the cumulative ledger. Verify
			// BEFORE running; an unusable pair is dropped and the job
			// reruns from scratch (never wrong, only slower).
			prior, ok := store.LoadProgress(j)
			scheme, ckptRound, peekErr := sim.PeekCheckpoint(store.CheckpointPath(j))
			if ok && peekErr == nil && scheme == j.Scheme && ckptRound == prior.Round && ckptRound < j.Rounds {
				var startRound int
				ropts := append([]sim.RunOption{makeObserver(prior)}, opts...)
				emit(Event{Kind: JobStarted, Job: j, Index: idx, Total: total, Rounds: j.Rounds})
				emit(Event{Kind: JobResumed, Job: j, Index: idx, Total: total, Round: ckptRound, Rounds: j.Rounds})
				if tk.On() {
					tk.WallInstant("resume", "job", tk.Labelf("from round %d", ckptRound))
				}
				res, startRound, err = experiment.ResumeJob(ctx, j, store.CheckpointPath(j),
					priorLedger(prior), prior.TotalSeconds, ropts...)
				if err != nil {
					if ctx.Err() != nil {
						return JobResult{}, ctx.Err()
					}
					return JobResult{}, err
				}
				if startRound != ckptRound {
					return JobResult{}, fmt.Errorf("sweep: job %s: checkpoint moved from round %d to %d during resume", j.Name, ckptRound, startRound)
				}
				resumed = true
			} else {
				store.DropTransient(j)
			}
		}
	}
	if !resumed {
		ropts := append([]sim.RunOption{makeObserver(Progress{})}, opts...)
		emit(Event{Kind: JobStarted, Job: j, Index: idx, Total: total, Rounds: j.Rounds})
		res, err = experiment.RunJob(ctx, j, ropts...)
		if err != nil {
			if ctx.Err() != nil {
				return JobResult{}, ctx.Err()
			}
			return JobResult{}, err
		}
	}

	hostSec := time.Since(start).Seconds()
	if store != nil {
		if err := store.Record(res); err != nil {
			return JobResult{}, err
		}
		// Advisory: feeds the resumed-sweep ETA, never the manifest.
		_ = store.RecordTiming(j.ID, hostSec)
	}
	emit(Event{
		Kind: JobDone, Job: j, Index: idx, Total: total,
		Round: j.Rounds, Rounds: j.Rounds, HostSeconds: hostSec,
	})
	return res, nil
}

// priorLedger reconstructs a progress sidecar's component sums.
func priorLedger(p Progress) simnet.Ledger {
	var l simnet.Ledger
	for _, c := range simnet.Components() {
		if v, ok := p.Components[c.String()]; ok {
			l.Add(c, v)
		}
	}
	return l
}
