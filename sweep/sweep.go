// Package sweep is the experiment-sweep engine of the GSFL
// reproduction: it runs whole grids of simulation jobs concurrently,
// resumably, and deterministically.
//
// It layers three ideas on top of the run API (gsfl/sim):
//
//   - A declarative Grid (re-exported from the experiment layer): a base
//     Spec plus per-dimension value lists (schemes, cut layers, group
//     counts, allocators, seeds, quantization, dropout, …) that expands
//     into Jobs with stable content-hash IDs. Equal IDs mean bit-equal
//     results, so overlapping grids deduplicate and finished work is
//     never redone.
//
//   - A Scheduler that executes N jobs concurrently, each driving its
//     own sim.Runner under a per-job context, while splitting one global
//     worker budget across in-flight jobs (parallel.Budget) so a sweep
//     never oversubscribes the machine. Job progress streams to
//     observers as structured Events.
//
//   - A Store that makes sweeps resumable: a JSON-lines manifest plus a
//     per-job curve CSV under a results directory. Re-running a sweep
//     skips jobs whose IDs are already recorded; jobs killed mid-run
//     restart from their sim checkpoint and continue bit-identically.
//
// Determinism contract: every job is bit-identical for any worker count
// and any schedule (see internal/parallel), results are ordered by job
// position, and the manifest is compacted into job order when a sweep
// completes — so a grid run at Jobs=1 and Jobs=8, or killed and
// resumed, produces byte-identical manifests and curve files.
//
// Minimal use:
//
//	grid := sweep.Grid{
//	    Name: "demo", Base: env.TestSpec(), Rounds: 50, EvalEvery: 5,
//	    Axes: sweep.Axes{Schemes: []string{"gsfl", "sl"}},
//	}
//	jobs, _ := grid.Jobs()
//	store, _ := sweep.OpenStore("results/sweep")
//	defer store.Close()
//	sched := &sweep.Scheduler{Jobs: 4, CheckpointEvery: 10}
//	results, err := sched.Run(ctx, jobs, store)
package sweep

import (
	"gsfl/internal/experiment"
	"gsfl/internal/metrics"
)

// Aliases re-export the grid vocabulary so sweep callers need no
// internal imports.
type (
	// Spec describes one experimental configuration (the public
	// env.Spec).
	Spec = experiment.Spec
	// Grid is a declarative sweep: a base Spec plus swept axes.
	Grid = experiment.Grid
	// Axes lists the values each swept dimension takes.
	Axes = experiment.Axes
	// Job is one expanded grid cell with a stable content-hash ID.
	Job = experiment.Job
	// JobResult is one completed cell: curve plus latency ledger.
	JobResult = experiment.JobResult
	// Curve is a training trajectory (the same type as sim.Curve).
	Curve = metrics.Curve
)
