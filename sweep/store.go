package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"gsfl/internal/metrics"
	"gsfl/internal/simnet"
	"gsfl/internal/trace"
)

// Store layout under its directory:
//
//	manifest.jsonl         one Entry per completed job, appended as jobs
//	                       finish, rewritten into job order on Compact
//	curves/<id>.csv        the job's training curve (trace long format)
//	ckpt/<id>.ckpt         sim checkpoint of an in-flight job (transient)
//	ckpt/<id>.progress     sweep-side cumulative ledger at the same round
//	                       boundary as the checkpoint (transient)
//
// Everything durable is keyed by the job's content-hash ID, so a store
// is shared safely by overlapping grids and across resumed runs.
const (
	manifestName = "manifest.jsonl"
	curvesDir    = "curves"
	ckptDir      = "ckpt"
)

// Point is one stored curve evaluation (a metrics.Point with fixed JSON
// field names, so the manifest format does not silently track internal
// renames).
type Point struct {
	Round          int     `json:"round"`
	LatencySeconds float64 `json:"latency_seconds"`
	Loss           float64 `json:"loss"`
	Accuracy       float64 `json:"accuracy"`
}

// Entry is one manifest record: a completed job's identity and results.
// Every field is deterministic — host wall-clock never enters the
// manifest — so equal sweeps produce byte-equal manifests.
type Entry struct {
	ID        string `json:"id"`
	Name      string `json:"name"`
	Scheme    string `json:"scheme"`
	Rounds    int    `json:"rounds"`
	EvalEvery int    `json:"eval_every"`
	Seed      int64  `json:"seed"`
	// FinalAccuracy and ElapsedSeconds summarize the run; Components is
	// the per-component virtual-latency sum over all rounds and
	// TotalSeconds the round-ordered sum of critical-path totals.
	FinalAccuracy  float64            `json:"final_accuracy"`
	ElapsedSeconds float64            `json:"elapsed_seconds"`
	TotalSeconds   float64            `json:"total_seconds"`
	Components     map[string]float64 `json:"components"`
	// Points is the training curve; CurveFile the per-job CSV copy
	// (relative to the store directory).
	Points    []Point `json:"points"`
	CurveFile string  `json:"curve_file"`
}

// progress is the transient sidecar persisted next to a job's sim
// checkpoint: the sweep-level accumulators the checkpoint itself does
// not carry. Round must match the checkpoint's completed rounds; a
// mismatch (crash between the two writes) discards both and the job
// restarts from scratch — determinism is never at risk, only work.
type progress struct {
	Round        int                `json:"round"`
	Components   map[string]float64 `json:"components"`
	TotalSeconds float64            `json:"total_seconds"`
}

// Store is the durable state of a sweep. It is safe for concurrent use
// by one Scheduler.
type Store struct {
	dir string

	mu      sync.Mutex
	entries map[string]*Entry
	f       *os.File // manifest append handle
}

// OpenStore opens (creating if needed) a sweep results directory and
// loads its manifest. A trailing partially-written manifest line (crash
// mid-append) is dropped; complete entries before it stand.
func OpenStore(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, curvesDir), filepath.Join(dir, ckptDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("sweep: creating store directory: %w", err)
		}
	}
	s := &Store{dir: dir, entries: map[string]*Entry{}}
	path := filepath.Join(dir, manifestName)
	if data, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(data)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var e Entry
			if err := json.Unmarshal(line, &e); err != nil {
				break // partial trailing line from a crash; stop here
			}
			s.entries[e.ID] = &e
		}
		data.Close()
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("sweep: opening manifest: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: opening manifest for append: %w", err)
	}
	s.f = f
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// StoreExists reports whether dir already holds a sweep manifest —
// i.e. opening it would continue (or collide with) an earlier sweep.
func StoreExists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// Close releases the manifest handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// Len returns the number of recorded entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Lookup returns the manifest entry for a job ID, if recorded.
func (s *Store) Lookup(id string) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	return e, ok
}

// Result reconstructs a completed job's JobResult from its manifest
// entry, so folds over a resumed sweep see exactly what the original
// execution produced.
func (s *Store) Result(j Job) (JobResult, bool) {
	e, ok := s.Lookup(j.ID)
	if !ok {
		return JobResult{}, false
	}
	res := JobResult{Job: j, TotalSeconds: e.TotalSeconds}
	res.Curve = &metrics.Curve{Scheme: e.Scheme, Points: make([]metrics.Point, len(e.Points))}
	for i, p := range e.Points {
		res.Curve.Points[i] = metrics.Point{
			Round: p.Round, LatencySeconds: p.LatencySeconds, Loss: p.Loss, Accuracy: p.Accuracy,
		}
	}
	for _, c := range simnet.Components() {
		if v, ok := e.Components[c.String()]; ok {
			res.Ledger.Add(c, v)
		}
	}
	return res, true
}

// entryOf flattens a result into its manifest record.
func (s *Store) entryOf(res JobResult) *Entry {
	e := &Entry{
		ID:           res.Job.ID,
		Name:         res.Job.Name,
		Scheme:       res.Job.Scheme,
		Rounds:       res.Job.Rounds,
		EvalEvery:    res.Job.EvalEvery,
		Seed:         res.Job.Spec.Seed,
		TotalSeconds: res.TotalSeconds,
		Components:   map[string]float64{},
		CurveFile:    filepath.Join(curvesDir, res.Job.ID+".csv"),
	}
	for _, c := range simnet.Components() {
		if v := res.Ledger.Get(c); v != 0 {
			e.Components[c.String()] = v
		}
	}
	if res.Curve != nil {
		e.FinalAccuracy = res.Curve.FinalAccuracy()
		for _, p := range res.Curve.Points {
			e.Points = append(e.Points, Point{
				Round: p.Round, LatencySeconds: p.LatencySeconds, Loss: p.Loss, Accuracy: p.Accuracy,
			})
		}
		if n := len(res.Curve.Points); n > 0 {
			e.ElapsedSeconds = res.Curve.Points[n-1].LatencySeconds
		}
	}
	return e
}

// Record persists a completed job: its curve CSV, then its manifest
// line (synced, so a later crash cannot lose acknowledged work), then
// drops the job's transient checkpoint state.
func (s *Store) Record(res JobResult) error {
	e := s.entryOf(res)
	if err := trace.SaveCurvesCSV(filepath.Join(s.dir, e.CurveFile), []*metrics.Curve{res.Curve}); err != nil {
		return err
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("sweep: encoding manifest entry: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("sweep: store is closed")
	}
	if _, err := s.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("sweep: appending manifest entry: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("sweep: syncing manifest: %w", err)
	}
	s.entries[e.ID] = e
	s.dropTransientLocked(res.Job.ID)
	return nil
}

// CheckpointPath returns where the scheduler checkpoints an in-flight
// job.
func (s *Store) CheckpointPath(j Job) string {
	return filepath.Join(s.dir, ckptDir, j.ID+".ckpt")
}

func (s *Store) progressPath(id string) string {
	return filepath.Join(s.dir, ckptDir, id+".progress")
}

// SaveProgress atomically persists the sweep-side accumulators at a
// checkpoint boundary.
func (s *Store) SaveProgress(j Job, p progress) error {
	buf, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("sweep: encoding progress: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Join(s.dir, ckptDir), ".progress-*")
	if err != nil {
		return fmt.Errorf("sweep: creating progress file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: writing progress: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sweep: writing progress: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.progressPath(j.ID)); err != nil {
		return fmt.Errorf("sweep: committing progress: %w", err)
	}
	return nil
}

// LoadProgress reads the job's progress sidecar, reporting ok=false
// when absent or unreadable.
func (s *Store) LoadProgress(j Job) (progress, bool) {
	buf, err := os.ReadFile(s.progressPath(j.ID))
	if err != nil {
		return progress{}, false
	}
	var p progress
	if err := json.Unmarshal(buf, &p); err != nil {
		return progress{}, false
	}
	return p, true
}

// HasCheckpoint reports whether an in-flight sim checkpoint exists for
// the job.
func (s *Store) HasCheckpoint(j Job) bool {
	_, err := os.Stat(s.CheckpointPath(j))
	return err == nil
}

// DropTransient removes the job's checkpoint and progress files (used
// when falling back to a from-scratch run).
func (s *Store) DropTransient(j Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropTransientLocked(j.ID)
}

func (s *Store) dropTransientLocked(id string) {
	os.Remove(filepath.Join(s.dir, ckptDir, id+".ckpt"))
	os.Remove(s.progressPath(id))
}

// Compact rewrites the manifest with the given jobs' entries first, in
// job order, followed by any other recorded entries sorted by ID. A
// completed sweep therefore leaves a manifest whose bytes depend only
// on the grid — not on scheduling, concurrency, or how many times the
// sweep was killed and resumed. The rewrite is atomic.
func (s *Store) Compact(jobs []Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ordered []*Entry
	seen := map[string]bool{}
	for _, j := range jobs {
		if seen[j.ID] {
			continue
		}
		seen[j.ID] = true
		if e, ok := s.entries[j.ID]; ok {
			ordered = append(ordered, e)
		}
	}
	var extra []string
	for id := range s.entries {
		if !seen[id] {
			extra = append(extra, id)
		}
	}
	sort.Strings(extra)
	for _, id := range extra {
		ordered = append(ordered, s.entries[id])
	}

	tmp, err := os.CreateTemp(s.dir, ".manifest-*")
	if err != nil {
		return fmt.Errorf("sweep: compacting manifest: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	for _, e := range ordered {
		line, err := json.Marshal(e)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("sweep: encoding manifest entry: %w", err)
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			tmp.Close()
			return fmt.Errorf("sweep: writing manifest: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: writing manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sweep: writing manifest: %w", err)
	}
	path := filepath.Join(s.dir, manifestName)
	if s.f != nil {
		s.f.Close()
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("sweep: committing manifest: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("sweep: reopening manifest: %w", err)
	}
	s.f = f
	return nil
}
