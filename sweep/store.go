package sweep

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"

	"gsfl/internal/metrics"
	"gsfl/internal/simnet"
	"gsfl/internal/trace"
)

// Store layout under its directory:
//
//	manifest.jsonl         one Entry per completed job, appended as jobs
//	                       finish, rewritten into job order on Compact
//	curves/<id>.csv        the job's training curve (trace long format)
//	ckpt/<id>.ckpt         sim checkpoint of an in-flight job (transient)
//	ckpt/<id>.progress     sweep-side cumulative ledger at the same round
//	                       boundary as the checkpoint (transient)
//
// Everything durable is keyed by the job's content-hash ID, so a store
// is shared safely by overlapping grids and across resumed runs.
const (
	manifestName = "manifest.jsonl"
	curvesDir    = "curves"
	ckptDir      = "ckpt"
	// timingsName is a transient host wall-clock sidecar: one line per
	// recorded job ({"id":…,"host_seconds":…}), appended on Record and
	// deleted on Compact. It exists so a resumed sweep can seed its ETA
	// from the completed jobs' real cost without host time ever reaching
	// the manifest — a completed store stays byte-identical across
	// machines and kill schedules.
	timingsName = "timings.jsonl"
	// lockName is the store's advisory-lock file.
	lockName = ".lock"
)

// Point is one stored curve evaluation (a metrics.Point with fixed JSON
// field names, so the manifest format does not silently track internal
// renames).
type Point struct {
	Round          int     `json:"round"`
	LatencySeconds float64 `json:"latency_seconds"`
	Loss           float64 `json:"loss"`
	Accuracy       float64 `json:"accuracy"`
}

// Entry is one manifest record: a completed job's identity and results.
// Every field is deterministic — host wall-clock never enters the
// manifest — so equal sweeps produce byte-equal manifests.
type Entry struct {
	ID        string `json:"id"`
	Name      string `json:"name"`
	Scheme    string `json:"scheme"`
	Rounds    int    `json:"rounds"`
	EvalEvery int    `json:"eval_every"`
	Seed      int64  `json:"seed"`
	// FinalAccuracy and ElapsedSeconds summarize the run; Components is
	// the per-component virtual-latency sum over all rounds and
	// TotalSeconds the round-ordered sum of critical-path totals.
	FinalAccuracy  float64            `json:"final_accuracy"`
	ElapsedSeconds float64            `json:"elapsed_seconds"`
	TotalSeconds   float64            `json:"total_seconds"`
	Components     map[string]float64 `json:"components"`
	// Points is the training curve; CurveFile the per-job CSV copy
	// (relative to the store directory).
	Points    []Point `json:"points"`
	CurveFile string  `json:"curve_file"`
}

// Progress is the transient sidecar persisted next to a job's sim
// checkpoint: the sweep-level accumulators the checkpoint itself does
// not carry. Round must match the checkpoint's completed rounds; a
// mismatch (crash between the two writes) discards both and the job
// restarts from scratch — determinism is never at risk, only work.
// It is exported because the fleet coordinator ships it to workers as
// part of a lease's checkpoint handoff.
type Progress struct {
	Round        int                `json:"round"`
	Components   map[string]float64 `json:"components"`
	TotalSeconds float64            `json:"total_seconds"`
}

// ErrStoreLocked reports a store directory already held open by another
// process (a live coordinator or scheduler).
var ErrStoreLocked = errors.New("sweep: store is locked by another process")

// Store is the durable state of a sweep. It is safe for concurrent use
// by one Scheduler. An open Store holds an exclusive advisory lock on
// its directory, so two processes (say, a fleet coordinator and a
// stray single-process sweep) cannot interleave manifest appends.
type Store struct {
	dir string

	mu      sync.Mutex
	entries map[string]*Entry
	timings map[string]float64 // job ID -> host seconds (transient sidecar)
	f       *os.File           // manifest append handle
	lock    *os.File           // flock handle on lockName
}

// OpenStore opens (creating if needed) a sweep results directory and
// loads its manifest. A trailing partially-written manifest line (crash
// mid-append) is dropped; complete entries before it stand. Opening a
// store another process holds open fails with ErrStoreLocked; a
// manifest momentarily absent because a compacting coordinator is
// mid-rename is retried, not treated as empty.
func OpenStore(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, curvesDir), filepath.Join(dir, ckptDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("sweep: creating store directory: %w", err)
		}
	}
	lock, err := lockStore(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, entries: map[string]*Entry{}, timings: map[string]float64{}, lock: lock}
	path := filepath.Join(dir, manifestName)
	if data, err := openManifest(dir); err == nil {
		sc := bufio.NewScanner(data)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var e Entry
			if err := json.Unmarshal(line, &e); err != nil {
				break // partial trailing line from a crash; stop here
			}
			s.entries[e.ID] = &e
		}
		data.Close()
	} else if !os.IsNotExist(err) {
		lock.Close()
		return nil, fmt.Errorf("sweep: opening manifest: %w", err)
	}
	s.loadTimings()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		lock.Close()
		return nil, fmt.Errorf("sweep: opening manifest for append: %w", err)
	}
	s.f = f
	return s, nil
}

// lockStore takes the store's exclusive advisory lock. The lock is held
// by the open file descriptor, so a crashed process releases it
// automatically.
func lockStore(dir string) (*os.File, error) {
	lock, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: opening store lock: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("%w: %s", ErrStoreLocked, dir)
	}
	return lock, nil
}

// openManifest opens the manifest tolerating a concurrently-compacting
// coordinator. Compact replaces the file atomically via rename, but a
// reader that raced StoreExists can still observe ErrNotExist on
// filesystems that surface the swap as unlink+link; the in-flight
// rename is distinguishable from a genuinely fresh store by Compact's
// temp file, so retry while one is visible.
func openManifest(dir string) (*os.File, error) {
	path := filepath.Join(dir, manifestName)
	for attempt := 0; ; attempt++ {
		f, err := os.Open(path)
		if err == nil || !errors.Is(err, os.ErrNotExist) || attempt >= 100 {
			return f, err
		}
		tmps, _ := filepath.Glob(filepath.Join(dir, ".manifest-*"))
		if len(tmps) == 0 {
			return nil, err // fresh store, not a rename in flight
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// StoreExists reports whether dir already holds a sweep manifest —
// i.e. opening it would continue (or collide with) an earlier sweep.
func StoreExists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// Close releases the manifest handle and the store lock.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.f != nil {
		err = s.f.Close()
		s.f = nil
	}
	if s.lock != nil {
		s.lock.Close() // closing the fd drops the flock
		s.lock = nil
	}
	return err
}

// Len returns the number of recorded entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Lookup returns the manifest entry for a job ID, if recorded.
func (s *Store) Lookup(id string) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	return e, ok
}

// Result reconstructs a completed job's JobResult from its manifest
// entry, so folds over a resumed sweep see exactly what the original
// execution produced.
func (s *Store) Result(j Job) (JobResult, bool) {
	e, ok := s.Lookup(j.ID)
	if !ok {
		return JobResult{}, false
	}
	res := JobResult{Job: j, TotalSeconds: e.TotalSeconds}
	res.Curve = &metrics.Curve{Scheme: e.Scheme, Points: make([]metrics.Point, len(e.Points))}
	for i, p := range e.Points {
		res.Curve.Points[i] = metrics.Point{
			Round: p.Round, LatencySeconds: p.LatencySeconds, Loss: p.Loss, Accuracy: p.Accuracy,
		}
	}
	for _, c := range simnet.Components() {
		if v, ok := e.Components[c.String()]; ok {
			res.Ledger.Add(c, v)
		}
	}
	return res, true
}

// entryOf flattens a result into its manifest record.
func (s *Store) entryOf(res JobResult) *Entry {
	e := &Entry{
		ID:           res.Job.ID,
		Name:         res.Job.Name,
		Scheme:       res.Job.Scheme,
		Rounds:       res.Job.Rounds,
		EvalEvery:    res.Job.EvalEvery,
		Seed:         res.Job.Spec.Seed,
		TotalSeconds: res.TotalSeconds,
		Components:   map[string]float64{},
		CurveFile:    filepath.Join(curvesDir, res.Job.ID+".csv"),
	}
	for _, c := range simnet.Components() {
		if v := res.Ledger.Get(c); v != 0 {
			e.Components[c.String()] = v
		}
	}
	if res.Curve != nil {
		e.FinalAccuracy = res.Curve.FinalAccuracy()
		for _, p := range res.Curve.Points {
			e.Points = append(e.Points, Point{
				Round: p.Round, LatencySeconds: p.LatencySeconds, Loss: p.Loss, Accuracy: p.Accuracy,
			})
		}
		if n := len(res.Curve.Points); n > 0 {
			e.ElapsedSeconds = res.Curve.Points[n-1].LatencySeconds
		}
	}
	return e
}

// Record persists a completed job: its curve CSV, then its manifest
// line (synced, so a later crash cannot lose acknowledged work), then
// drops the job's transient checkpoint state.
func (s *Store) Record(res JobResult) error {
	e := s.entryOf(res)
	if err := trace.SaveCurvesCSV(filepath.Join(s.dir, e.CurveFile), []*metrics.Curve{res.Curve}); err != nil {
		return err
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("sweep: encoding manifest entry: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("sweep: store is closed")
	}
	if _, err := s.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("sweep: appending manifest entry: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("sweep: syncing manifest: %w", err)
	}
	s.entries[e.ID] = e
	s.dropTransientLocked(res.Job.ID)
	return nil
}

// CheckpointPath returns where the scheduler checkpoints an in-flight
// job.
func (s *Store) CheckpointPath(j Job) string {
	return filepath.Join(s.dir, ckptDir, j.ID+".ckpt")
}

func (s *Store) progressPath(id string) string {
	return filepath.Join(s.dir, ckptDir, id+".progress")
}

// SaveProgress atomically persists the sweep-side accumulators at a
// checkpoint boundary.
func (s *Store) SaveProgress(j Job, p Progress) error {
	buf, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("sweep: encoding progress: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Join(s.dir, ckptDir), ".progress-*")
	if err != nil {
		return fmt.Errorf("sweep: creating progress file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: writing progress: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sweep: writing progress: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.progressPath(j.ID)); err != nil {
		return fmt.Errorf("sweep: committing progress: %w", err)
	}
	return nil
}

// LoadProgress reads the job's progress sidecar, reporting ok=false
// when absent or unreadable.
func (s *Store) LoadProgress(j Job) (Progress, bool) {
	buf, err := os.ReadFile(s.progressPath(j.ID))
	if err != nil {
		return Progress{}, false
	}
	var p Progress
	if err := json.Unmarshal(buf, &p); err != nil {
		return Progress{}, false
	}
	return p, true
}

// WriteCheckpoint atomically replaces the job's sim checkpoint with
// bytes received from elsewhere (a fleet worker's progress upload).
func (s *Store) WriteCheckpoint(j Job, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Join(s.dir, ckptDir), ".ckpt-*")
	if err != nil {
		return fmt.Errorf("sweep: creating checkpoint file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: writing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sweep: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.CheckpointPath(j)); err != nil {
		return fmt.Errorf("sweep: committing checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpoint returns the job's sim checkpoint bytes (for handing a
// partially-executed job to a fleet worker), or ok=false when absent.
func (s *Store) ReadCheckpoint(j Job) ([]byte, bool) {
	data, err := os.ReadFile(s.CheckpointPath(j))
	if err != nil {
		return nil, false
	}
	return data, true
}

// HasCheckpoint reports whether an in-flight sim checkpoint exists for
// the job.
func (s *Store) HasCheckpoint(j Job) bool {
	_, err := os.Stat(s.CheckpointPath(j))
	return err == nil
}

// DropTransient removes the job's checkpoint and progress files (used
// when falling back to a from-scratch run).
func (s *Store) DropTransient(j Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropTransientLocked(j.ID)
}

func (s *Store) dropTransientLocked(id string) {
	os.Remove(filepath.Join(s.dir, ckptDir, id+".ckpt"))
	os.Remove(s.progressPath(id))
}

// timingEntry is one line of the transient timings sidecar.
type timingEntry struct {
	ID          string  `json:"id"`
	HostSeconds float64 `json:"host_seconds"`
}

// loadTimings reads the transient timings sidecar (best-effort: a
// corrupt or missing file just means no ETA seed).
func (s *Store) loadTimings() {
	data, err := os.Open(filepath.Join(s.dir, timingsName))
	if err != nil {
		return
	}
	defer data.Close()
	sc := bufio.NewScanner(data)
	for sc.Scan() {
		var t timingEntry
		if json.Unmarshal(sc.Bytes(), &t) == nil && t.ID != "" {
			s.timings[t.ID] = t.HostSeconds
		}
	}
}

// RecordTiming appends a job's real host wall-clock cost to the
// transient timings sidecar (see timingsName). Timing is advisory — a
// write failure costs ETA accuracy on the next resume, nothing else.
func (s *Store) RecordTiming(id string, hostSeconds float64) error {
	line, err := json.Marshal(timingEntry{ID: id, HostSeconds: hostSeconds})
	if err != nil {
		return fmt.Errorf("sweep: encoding timing: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.OpenFile(filepath.Join(s.dir, timingsName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("sweep: opening timings: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("sweep: appending timing: %w", err)
	}
	s.timings[id] = hostSeconds
	return nil
}

// HostSecondsOf returns a completed job's recorded host wall-clock
// cost, when this store (or the killed run it resumes) measured one.
func (s *Store) HostSecondsOf(id string) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.timings[id]
	return v, ok
}

// Compact rewrites the manifest with the given jobs' entries first, in
// job order, followed by any other recorded entries sorted by ID. A
// completed sweep therefore leaves a manifest whose bytes depend only
// on the grid — not on scheduling, concurrency, or how many times the
// sweep was killed and resumed. The rewrite is atomic.
func (s *Store) Compact(jobs []Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ordered []*Entry
	seen := map[string]bool{}
	for _, j := range jobs {
		if seen[j.ID] {
			continue
		}
		seen[j.ID] = true
		if e, ok := s.entries[j.ID]; ok {
			ordered = append(ordered, e)
		}
	}
	var extra []string
	for id := range s.entries {
		if !seen[id] {
			extra = append(extra, id)
		}
	}
	sort.Strings(extra)
	for _, id := range extra {
		ordered = append(ordered, s.entries[id])
	}

	tmp, err := os.CreateTemp(s.dir, ".manifest-*")
	if err != nil {
		return fmt.Errorf("sweep: compacting manifest: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	for _, e := range ordered {
		line, err := json.Marshal(e)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("sweep: encoding manifest entry: %w", err)
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			tmp.Close()
			return fmt.Errorf("sweep: writing manifest: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: writing manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sweep: writing manifest: %w", err)
	}
	path := filepath.Join(s.dir, manifestName)
	if s.f != nil {
		s.f.Close()
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("sweep: committing manifest: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("sweep: reopening manifest: %w", err)
	}
	s.f = f
	// A compacted store is a completed sweep: drop the transient host
	// timings so the directory's bytes depend only on the grid.
	os.Remove(filepath.Join(s.dir, timingsName))
	s.timings = map[string]float64{}
	return nil
}
