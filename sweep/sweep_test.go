package sweep_test

import (
	"context"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"gsfl/internal/experiment"
	"gsfl/internal/simnet"
	"gsfl/sweep"
)

// testGrid is a small 2x2 grid over the CI spec: 4 jobs, 3 rounds each.
func testGrid() sweep.Grid {
	return sweep.Grid{
		Name: "t", Base: experiment.TestSpec(), Rounds: 3, EvalEvery: 1,
		Axes: sweep.Axes{
			Groups:  []int{1, 2},
			Schemes: []string{"gsfl", "sl"},
		},
	}
}

func jobsOf(t *testing.T, g sweep.Grid) []sweep.Job {
	t.Helper()
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// readTree returns path->content for every file under dir.
func readTree(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		buf, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = string(buf)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func runSweep(t *testing.T, jobs []sweep.Job, dir string, sched *sweep.Scheduler) []sweep.JobResult {
	t.Helper()
	store, err := sweep.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	res, err := sched.Run(context.Background(), jobs, store)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSchedulerDeterministicAcrossJobCounts is the tentpole contract: a
// grid run at Jobs=1 and Jobs=8 leaves byte-identical stores (manifest
// and every curve file) and returns identical results.
func TestSchedulerDeterministicAcrossJobCounts(t *testing.T) {
	jobs := jobsOf(t, testGrid())
	d1, d8 := t.TempDir(), t.TempDir()
	r1 := runSweep(t, jobs, d1, &sweep.Scheduler{Jobs: 1})
	r8 := runSweep(t, jobs, d8, &sweep.Scheduler{Jobs: 8})

	t1, t8 := readTree(t, d1), readTree(t, d8)
	if len(t1) != len(t8) {
		t.Fatalf("stores differ in file count: %d vs %d", len(t1), len(t8))
	}
	for path, body := range t1 {
		if t8[path] != body {
			t.Fatalf("store file %s differs between Jobs=1 and Jobs=8", path)
		}
	}
	if len(r1) != len(r8) {
		t.Fatalf("result counts differ: %d vs %d", len(r1), len(r8))
	}
	for i := range r1 {
		a, b := r1[i], r8[i]
		if a.Job.ID != b.Job.ID || a.TotalSeconds != b.TotalSeconds {
			t.Fatalf("result %d differs: %+v vs %+v", i, a, b)
		}
		for _, c := range simnet.Components() {
			if a.Ledger.Get(c) != b.Ledger.Get(c) {
				t.Fatalf("result %d %s seconds differ: %v vs %v", i, c, a.Ledger.Get(c), b.Ledger.Get(c))
			}
		}
		if len(a.Curve.Points) != len(b.Curve.Points) {
			t.Fatalf("result %d curve lengths differ", i)
		}
		for p := range a.Curve.Points {
			if a.Curve.Points[p] != b.Curve.Points[p] {
				t.Fatalf("result %d point %d differs", i, p)
			}
		}
	}
}

// TestSchedulerDedupsSharedIDs: overlapping grids (fig2a ⊃ fig2b) must
// execute shared cells once and fan the result out to every position.
func TestSchedulerDedupsSharedIDs(t *testing.T) {
	spec := experiment.TestSpec()
	a := jobsOf(t, experiment.Fig2aGrid(spec, 2, 1))
	b := jobsOf(t, experiment.Fig2bGrid(spec, 2, 1))
	all := append(append([]sweep.Job{}, a...), b...)

	var started atomic.Int32
	sched := &sweep.Scheduler{
		Jobs: 2,
		Observers: []sweep.Observer{sweep.ObserverFunc(func(e sweep.Event) {
			if e.Kind == sweep.JobStarted {
				started.Add(1)
			}
		})},
	}
	res, err := sched.Run(context.Background(), all, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := int(started.Load()); got != len(a) {
		t.Fatalf("started %d jobs, want %d (fig2b cells must reuse fig2a's)", got, len(a))
	}
	if len(res) != len(all) {
		t.Fatalf("got %d results for %d job positions", len(res), len(all))
	}
	// fig2b/gsfl (position len(a)) must be the same result as fig2a's
	// gsfl cell (position 2).
	if res[len(a)].Curve.FinalAccuracy() != res[2].Curve.FinalAccuracy() {
		t.Fatal("deduplicated positions disagree")
	}
}

// TestSchedulerResumeSkipsCompleted: rerunning a finished sweep executes
// nothing and leaves the store untouched.
func TestSchedulerResumeSkipsCompleted(t *testing.T) {
	jobs := jobsOf(t, testGrid())
	dir := t.TempDir()
	runSweep(t, jobs, dir, &sweep.Scheduler{Jobs: 2})
	before := readTree(t, dir)

	var started, skipped atomic.Int32
	sched := &sweep.Scheduler{
		Jobs: 2,
		Observers: []sweep.Observer{sweep.ObserverFunc(func(e sweep.Event) {
			switch e.Kind {
			case sweep.JobStarted:
				started.Add(1)
			case sweep.JobSkipped:
				skipped.Add(1)
			}
		})},
	}
	runSweep(t, jobs, dir, sched)
	if started.Load() != 0 || int(skipped.Load()) != len(jobs) {
		t.Fatalf("rerun started %d and skipped %d jobs, want 0/%d", started.Load(), skipped.Load(), len(jobs))
	}
	after := readTree(t, dir)
	for path, body := range before {
		if after[path] != body {
			t.Fatalf("rerun changed store file %s", path)
		}
	}
}

// TestSchedulerKilledSweepResumesIdentically cancels a sweep mid-run
// (after the first completed round, with per-round checkpointing), then
// resumes it and requires the final store to be byte-identical to an
// uninterrupted sweep's.
func TestSchedulerKilledSweepResumesIdentically(t *testing.T) {
	jobs := jobsOf(t, testGrid())

	refDir := t.TempDir()
	runSweep(t, jobs, refDir, &sweep.Scheduler{Jobs: 2, CheckpointEvery: 1})
	want := readTree(t, refDir)

	dir := t.TempDir()
	store, err := sweep.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sched := &sweep.Scheduler{
		Jobs:            2,
		CheckpointEvery: 1,
		Observers: []sweep.Observer{sweep.ObserverFunc(func(e sweep.Event) {
			// Kill the sweep as soon as any job has progressed past its
			// first round: some jobs are then mid-flight with live
			// checkpoints, others untouched.
			if e.Kind == sweep.JobRound && e.Round >= 2 {
				cancel()
			}
		})},
	}
	if _, err := sched.Run(ctx, jobs, store); err == nil {
		t.Fatal("cancelled sweep must report an error")
	}
	store.Close()
	cancel()

	var resumed atomic.Int32
	store2, err := sweep.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	sched2 := &sweep.Scheduler{
		Jobs:            2,
		CheckpointEvery: 1,
		Observers: []sweep.Observer{sweep.ObserverFunc(func(e sweep.Event) {
			if e.Kind == sweep.JobResumed {
				resumed.Add(1)
			}
		})},
	}
	if _, err := sched2.Run(context.Background(), jobs, store2); err != nil {
		t.Fatal(err)
	}

	got := readTree(t, dir)
	if len(got) != len(want) {
		t.Fatalf("resumed store has %d files, want %d", len(got), len(want))
	}
	for path, body := range want {
		if got[path] != body {
			t.Fatalf("resumed store file %s differs from uninterrupted run", path)
		}
	}
	t.Logf("resumed %d mid-flight jobs from checkpoints", resumed.Load())
}

// TestStoreSurvivesPartialManifestLine: a crash mid-append leaves a
// truncated trailing line; reopening must keep the complete entries and
// rerunning must only redo the lost job.
func TestStoreSurvivesPartialManifestLine(t *testing.T) {
	jobs := jobsOf(t, testGrid())
	dir := t.TempDir()
	runSweep(t, jobs, dir, &sweep.Scheduler{Jobs: 1})

	path := filepath.Join(dir, "manifest.jsonl")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the last entry in half.
	if err := os.WriteFile(path, buf[:len(buf)-40], 0o644); err != nil {
		t.Fatal(err)
	}

	store, err := sweep.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.Len() != len(jobs)-1 {
		t.Fatalf("store recovered %d entries, want %d", store.Len(), len(jobs)-1)
	}
	if _, err := (&sweep.Scheduler{Jobs: 1}).Run(context.Background(), jobs, store); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(buf) {
		t.Fatal("repaired manifest differs from the original")
	}
}

func TestSchedulerRejectsUnexpandedJobs(t *testing.T) {
	_, err := (&sweep.Scheduler{}).Run(context.Background(), []sweep.Job{{Name: "raw"}}, nil)
	if err == nil {
		t.Fatal("expected error for a job without an ID")
	}
}
