package sweep

import (
	"gsfl/internal/experiment"
	"gsfl/internal/hotbench"
	"gsfl/internal/popbench"
	"gsfl/internal/trace"
)

// This file re-exports the paper-reproduction harness — the catalogue
// of figure/table experiments, their folds, and the non-grid
// experiments — so harness frontends (cmd/gsfl-bench, cmd/gsfl-sweep,
// the examples) can regenerate every artifact without internal imports.
// The grid vocabulary itself (Spec, Grid, Job, …) is re-exported in
// sweep.go.

// Aliases for the catalogue and its table output.
type (
	// GridExperiment is one named figure/table: grids to expand plus the
	// fold that writes its CSVs.
	GridExperiment = experiment.GridExperiment
	// GridSelection is a resolved experiment choice: selected
	// experiments, concatenated jobs, and per-experiment result slicing.
	GridSelection = experiment.GridSelection
	// Table is a named column-ordered result table with CSV/JSON output.
	Table = trace.Table
	// Row is one Table row.
	Row = trace.Row
	// ValidationResult compares the analytic latency model against
	// event-driven processor sharing.
	ValidationResult = experiment.ValidationResult
	// CutLayerResult is one row of the cut-layer ablation.
	CutLayerResult = experiment.CutLayerResult
	// GroupingResult is one row of the grouping ablation.
	GroupingResult = experiment.GroupingResult
	// AllocationResult is one row of the resource-allocation ablation.
	AllocationResult = experiment.AllocationResult
)

// NewTable creates an empty result table with the given column order.
func NewTable(name string, columns ...string) *Table {
	return trace.NewTable(name, columns...)
}

// GridExperiments catalogues every grid-backed experiment of the paper
// harness at the given scale parameters, in canonical order.
func GridExperiments(spec Spec, rounds, evalEvery int, target float64) []GridExperiment {
	return experiment.GridExperiments(spec, rounds, evalEvery, target)
}

// SelectGridExperiments filters the catalogue by an -exp token ("all"
// selects everything) and expands the chosen grids.
func SelectGridExperiments(catalogue []GridExperiment, name string) (GridSelection, error) {
	return experiment.SelectGridExperiments(catalogue, name)
}

// RunFig2a regenerates Fig. 2(a): accuracy versus training rounds for
// CL, SL, GSFL, and FL — serially; use the Scheduler over
// GridExperiments for concurrent execution.
func RunFig2a(spec Spec, rounds, evalEvery int) ([]*Curve, error) {
	return experiment.RunFig2a(spec, rounds, evalEvery)
}

// RunTable3 regenerates the server-storage comparison (GSFL hosts M
// server replicas versus SplitFed's N); it runs no training rounds.
func RunTable3(spec Spec) (*Table, error) {
	return experiment.RunTable3(spec)
}

// RunValidationEventDriven validates the analytic round-latency model
// against an event-driven processor-sharing replay of the same round.
func RunValidationEventDriven(spec Spec) (ValidationResult, error) {
	return experiment.RunValidationEventDriven(spec)
}

// RunAblationCutLayer sweeps the split index and reports, per cut, the
// smashed-data size, client-model size, mean round latency, and final
// accuracy.
func RunAblationCutLayer(spec Spec, cuts []int, rounds, evalEvery int) ([]CutLayerResult, error) {
	return experiment.RunAblationCutLayer(spec, cuts, rounds, evalEvery)
}

// RunAblationGrouping sweeps the number of groups and the grouping
// strategy (registry names; see env.Strategies).
func RunAblationGrouping(spec Spec, groupCounts []int, strategies []string, rounds, evalEvery int) ([]GroupingResult, error) {
	return experiment.RunAblationGrouping(spec, groupCounts, strategies, rounds, evalEvery)
}

// RunAblationAllocation compares registered bandwidth-allocation
// policies on GSFL round latency, holding everything else fixed.
func RunAblationAllocation(spec Spec, rounds int) ([]AllocationResult, error) {
	return experiment.RunAblationAllocation(spec, rounds)
}

// WriteHotPathBench measures the training hot path (one reduced GSFL
// round plus the tensor kernels under it) and writes ns/B/allocs per op
// to a JSON report at path — gsfl-bench's -benchjson mode.
func WriteHotPathBench(path, label string) error {
	return hotbench.Write(path, label)
}

// CheckHotPathBench measures the live packed-GEMM matmul and errors
// when it regresses more than 25% over the "gemm" stage recorded in the
// committed hot-path report (BENCH_hotpath.json) — gsfl-bench's
// -benchcheck mode, run by CI as a perf ratchet.
func CheckHotPathBench(path string) error {
	return hotbench.Check(path)
}

// WritePopulationBench measures the population engine at deployment
// scale (a million-member churning population sampled a few hundred
// members per round) and writes its memory footprint and per-round
// costs to a JSON report at path — gsfl-bench's -benchpop mode. It
// errors when the population's resident storage exceeds the record-
// array byte budgets, so CI can gate on the exit code.
func WritePopulationBench(path, label string) error {
	return popbench.Write(path, label)
}
