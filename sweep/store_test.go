package sweep_test

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gsfl/sweep"
)

// TestOpenStoreExclusiveLock: a store held open by one owner (in the
// fleet, the coordinator) must refuse a second opener with
// ErrStoreLocked, and admit it again once the first closes.
func TestOpenStoreExclusiveLock(t *testing.T) {
	dir := t.TempDir()
	s1, err := sweep.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sweep.OpenStore(dir); !errors.Is(err, sweep.ErrStoreLocked) {
		t.Fatalf("second open got %v, want ErrStoreLocked", err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := sweep.OpenStore(dir)
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	s2.Close()
}

// TestOpenStoreWaitsOutCompactRename: Compact replaces the manifest by
// rename; a reader that observes the window where the old name is gone
// (unlink+link filesystems) must wait for the new file — the visible
// .manifest-* temp distinguishes the in-flight swap from a fresh store.
func TestOpenStoreWaitsOutCompactRename(t *testing.T) {
	dir := t.TempDir()
	line, err := json.Marshal(sweep.Entry{ID: "job-1", Name: "n"})
	if err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, ".manifest-123")
	if err := os.WriteFile(tmp, append(line, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		os.Rename(tmp, filepath.Join(dir, "manifest.jsonl"))
	}()
	s, err := sweep.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 1 {
		t.Fatalf("store loaded %d entries through the rename window, want 1", s.Len())
	}
}

// TestOpenStoreFreshDirIsNotRetried: no manifest and no compact temp
// file is simply a new store, not a rename in flight.
func TestOpenStoreFreshDirIsNotRetried(t *testing.T) {
	start := time.Now()
	s, err := sweep.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if d := time.Since(start); d > time.Second {
		t.Fatalf("fresh open took %v — the rename retry loop must not trigger", d)
	}
}

// TestStoreTimingsLifecycle: recorded host timings survive a reopen (so
// a resumed sweep can seed its ETA from completed jobs) and are erased
// by Compact (so a completed store's bytes stay machine-independent).
func TestStoreTimingsLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, err := sweep.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RecordTiming("job-1", 2.5); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.HostSecondsOf("job-1"); !ok || v != 2.5 {
		t.Fatalf("HostSecondsOf = %v, %v; want 2.5, true", v, ok)
	}
	s.Close()

	s, err = sweep.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if v, ok := s.HostSecondsOf("job-1"); !ok || v != 2.5 {
		t.Fatalf("after reopen HostSecondsOf = %v, %v; want 2.5, true", v, ok)
	}
	if err := s.Compact(nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.HostSecondsOf("job-1"); ok {
		t.Fatal("timing survived Compact")
	}
	if _, err := os.Stat(filepath.Join(dir, "timings.jsonl")); !os.IsNotExist(err) {
		t.Fatalf("timings sidecar still on disk after Compact: %v", err)
	}
}

// TestSkippedJobsCarryHostSeconds: on resume, JobSkipped events report
// the job's recorded host cost so a progress observer can seed its ETA
// from completed work instead of starting at zero.
func TestSkippedJobsCarryHostSeconds(t *testing.T) {
	jobs := jobsOf(t, testGrid())
	dir := t.TempDir()
	store, err := sweep.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := (&sweep.Scheduler{Jobs: 1}).Run(context.Background(), jobs[:1], store); err != nil {
		t.Fatal(err)
	}
	// The completed sub-sweep compacted away its timings; re-record one
	// as a killed-mid-sweep store would still hold it.
	if err := store.RecordTiming(jobs[0].ID, 3.25); err != nil {
		t.Fatal(err)
	}

	var got float64
	sched := &sweep.Scheduler{
		Jobs: 1,
		Observers: []sweep.Observer{sweep.ObserverFunc(func(e sweep.Event) {
			if e.Kind == sweep.JobSkipped && e.Job.ID == jobs[0].ID {
				got = e.HostSeconds
			}
		})},
	}
	if _, err := sched.Run(context.Background(), jobs, store); err != nil {
		t.Fatal(err)
	}
	if got != 3.25 {
		t.Fatalf("JobSkipped.HostSeconds = %v, want 3.25", got)
	}
}
