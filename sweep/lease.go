package sweep

// Leased execution: the pieces the fleet job plane (gsfl/fleet) needs
// to run one store-less job on a remote worker while keeping the
// determinism contract. The coordinator owns the Store; a worker gets a
// Job (and possibly a checkpoint handoff) over the wire, executes it
// with RunLeased against a scratch directory, streams checkpoints back
// through a callback, and ships the result home as ResultParts. All
// cross-process payloads are JSON: Go's float64 encoding round-trips
// exactly, so a result reconstructed on the coordinator is bit-equal to
// one computed in-process.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"gsfl/internal/experiment"
	"gsfl/internal/metrics"
	"gsfl/internal/simnet"
	"gsfl/sim"
)

// wireJob is a Job's cross-process encoding. Job.Spec is json:"-" (a
// spec has no place in manifests), so the fleet wire spells it out
// explicitly.
type wireJob struct {
	ID        string `json:"id"`
	Name      string `json:"name"`
	Scheme    string `json:"scheme"`
	Rounds    int    `json:"rounds"`
	EvalEvery int    `json:"eval_every"`
	Spec      Spec   `json:"spec"`
}

// MarshalJobWire encodes a job, spec included, for the fleet wire.
func MarshalJobWire(j Job) ([]byte, error) {
	return json.Marshal(wireJob{
		ID: j.ID, Name: j.Name, Scheme: j.Scheme,
		Rounds: j.Rounds, EvalEvery: j.EvalEvery, Spec: j.Spec,
	})
}

// UnmarshalJobWire decodes a job received over the fleet wire and
// verifies its integrity by recomputing the content-hash ID: a job
// whose bytes do not hash to the ID it claims must not execute under
// that identity.
func UnmarshalJobWire(data []byte) (Job, error) {
	var w wireJob
	if err := json.Unmarshal(data, &w); err != nil {
		return Job{}, fmt.Errorf("sweep: decoding wire job: %w", err)
	}
	j := Job{ID: w.ID, Name: w.Name, Scheme: w.Scheme, Rounds: w.Rounds, EvalEvery: w.EvalEvery, Spec: w.Spec}
	id, err := experiment.RehashJob(j)
	if err != nil {
		return Job{}, fmt.Errorf("sweep: wire job %s: %w", w.Name, err)
	}
	if id != w.ID {
		return Job{}, fmt.Errorf("sweep: wire job %s claims ID %s but hashes to %s", w.Name, w.ID, id)
	}
	return j, nil
}

// RehashJob recomputes a job's content-hash ID from its fields.
func RehashJob(j Job) (string, error) { return experiment.RehashJob(j) }

// ResultParts is a JobResult's cross-process encoding: everything the
// coordinator needs to reconstruct the result (and so the manifest
// entry) bit-identically, without shipping internal ledger types.
type ResultParts struct {
	TotalSeconds float64            `json:"total_seconds"`
	Components   map[string]float64 `json:"components"`
	Points       []Point            `json:"points"`
}

// PartsOf flattens a completed job's result for the fleet wire.
func PartsOf(res JobResult) ResultParts {
	p := ResultParts{TotalSeconds: res.TotalSeconds, Components: map[string]float64{}}
	for _, c := range simnet.Components() {
		if v := res.Ledger.Get(c); v != 0 {
			p.Components[c.String()] = v
		}
	}
	if res.Curve != nil {
		for _, pt := range res.Curve.Points {
			p.Points = append(p.Points, Point{
				Round: pt.Round, LatencySeconds: pt.LatencySeconds, Loss: pt.Loss, Accuracy: pt.Accuracy,
			})
		}
	}
	return p
}

// ResultFrom reconstructs a JobResult from its wire parts, paired with
// the coordinator's own canonical Job — exactly the inverse of PartsOf,
// mirroring how Store.Result rebuilds results from manifest entries.
func ResultFrom(j Job, parts ResultParts) JobResult {
	res := JobResult{Job: j, TotalSeconds: parts.TotalSeconds}
	res.Curve = &metrics.Curve{Scheme: j.Scheme, Points: make([]metrics.Point, len(parts.Points))}
	for i, p := range parts.Points {
		res.Curve.Points[i] = metrics.Point{
			Round: p.Round, LatencySeconds: p.LatencySeconds, Loss: p.Loss, Accuracy: p.Accuracy,
		}
	}
	for _, c := range simnet.Components() {
		if v, ok := parts.Components[c.String()]; ok {
			res.Ledger.Add(c, v)
		}
	}
	return res
}

// LeaseCheckpoint is the handoff state attached to a lease of a
// partially-executed job: the progress sidecar plus the sim checkpoint
// bytes a previous worker uploaded before dying.
type LeaseCheckpoint struct {
	Progress Progress
	Ckpt     []byte
}

// LeaseCallbacks observe a leased job's execution. All callbacks are
// invoked synchronously from the training goroutine, in round order.
type LeaseCallbacks struct {
	// OnRound fires after every completed round.
	OnRound func(round, rounds int, hostSeconds float64)
	// OnResumed fires once, before training, when the job continues from
	// the handoff checkpoint rather than starting fresh.
	OnResumed func(round int)
	// OnCheckpoint fires at every checkpoint boundary with the progress
	// sidecar and the checkpoint bytes just written. An error aborts the
	// job (the worker lost its lease, or the coordinator is gone).
	OnCheckpoint func(p Progress, ckpt []byte) error
}

// RunLeased executes one job on a fleet worker: the store-less mirror
// of the Scheduler's per-job path. The sim checkpoint lives under
// scratchDir; handoff, when valid (sim.PeekCheckpoint agrees with the
// progress sidecar, same resume-soundness rule as the Scheduler's),
// seeds a bit-identical mid-job resume, and is otherwise discarded —
// never wrong, only slower. Checkpoint bytes stream back through
// cb.OnCheckpoint for the coordinator to persist.
func RunLeased(ctx context.Context, j Job, scratchDir string, checkpointEvery int, handoff *LeaseCheckpoint, cb LeaseCallbacks) (JobResult, error) {
	ckptPath := filepath.Join(scratchDir, j.ID+".ckpt")
	defer os.Remove(ckptPath)

	// Validate the handoff before running (exactly runOne's rule): the
	// checkpoint and the progress sidecar must describe the same round
	// boundary of the same scheme, with rounds still to run.
	var prior Progress
	resume := false
	if handoff != nil && len(handoff.Ckpt) > 0 {
		if err := os.WriteFile(ckptPath, handoff.Ckpt, 0o644); err != nil {
			return JobResult{}, fmt.Errorf("sweep: staging handoff checkpoint: %w", err)
		}
		scheme, ckptRound, peekErr := sim.PeekCheckpoint(ckptPath)
		if peekErr == nil && scheme == j.Scheme && ckptRound == handoff.Progress.Round && ckptRound < j.Rounds {
			prior = handoff.Progress
			resume = true
		} else {
			os.Remove(ckptPath)
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The accumulating observer, seeded like the Scheduler's so resumed
	// floating-point summation order matches an uninterrupted run.
	sum := simnet.Ledger{}
	for _, c := range simnet.Components() {
		if v, ok := prior.Components[c.String()]; ok {
			sum.Add(c, v)
		}
	}
	totalSec := prior.TotalSeconds
	var cbErr error
	observer := sim.WithObserver(sim.ObserverFunc(func(e sim.RoundEvent) {
		sum.Merge(e.Ledger)
		totalSec += e.RoundSeconds
		if e.CheckpointPath != "" && cb.OnCheckpoint != nil && cbErr == nil {
			comp := map[string]float64{}
			for _, c := range simnet.Components() {
				if v := sum.Get(c); v != 0 {
					comp[c.String()] = v
				}
			}
			data, err := os.ReadFile(e.CheckpointPath)
			if err == nil {
				err = cb.OnCheckpoint(Progress{Round: e.Round, Components: comp, TotalSeconds: totalSec}, data)
			}
			if err != nil {
				// Losing the lease (or the coordinator) aborts the job; the
				// context cancellation lands at the next round boundary.
				cbErr = err
				cancel()
			}
		}
		if cb.OnRound != nil {
			cb.OnRound(e.Round, e.Rounds, e.HostSeconds)
		}
	}))
	opts := []sim.RunOption{observer}
	if checkpointEvery > 0 {
		opts = append(opts,
			sim.WithCheckpointPath(ckptPath),
			sim.WithCheckpointEvery(checkpointEvery),
		)
	}

	var (
		res JobResult
		err error
	)
	if resume {
		if cb.OnResumed != nil {
			cb.OnResumed(prior.Round)
		}
		var startRound int
		res, startRound, err = experiment.ResumeJob(ctx, j, ckptPath, priorLedger(prior), prior.TotalSeconds, opts...)
		if err == nil && startRound != prior.Round {
			err = fmt.Errorf("sweep: job %s: handoff checkpoint moved from round %d to %d during resume", j.Name, prior.Round, startRound)
		}
	} else {
		res, err = experiment.RunJob(ctx, j, opts...)
	}
	if cbErr != nil {
		return JobResult{}, cbErr
	}
	return res, err
}
